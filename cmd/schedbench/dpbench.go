// The dp subcommand micro-benchmarks the DP fill path in isolation: for each
// figure workload it freezes the rounded instance at the PTAS's converged
// target makespan and times the table fill — optimized (Jobs-sorted pruned
// scan, odometer decoding, cached level index) against the legacy seed path
// (full configuration scan, division decoding), plus the adaptive
// barrier-pool path (FillAuto) — across worker counts and level modes.
// Results print as a table and, with -json, land in BENCH_dp.json for
// regression tracking; -baseline diffs the run against a committed
// BENCH_dp.json and fails on regressions beyond -baseline-threshold.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/par"
	"repro/internal/workload"
	"repro/pcmax"
)

// dpShape names a figure workload: the (m, n) pair of one of the paper's
// speedup experiments.
type dpShape struct {
	Name string
	M, N int
}

// dpShapes mirrors the instance sizes of Figures 2-4.
var dpShapes = []dpShape{
	{"fig2", 20, 100},
	{"fig3", 10, 50},
	{"fig4", 10, 30},
}

// dpRecord is one measured configuration, serialized into BENCH_dp.json.
type dpRecord struct {
	Workload  string  `json:"workload"`
	Family    string  `json:"family"`
	M         int     `json:"m"`
	N         int     `json:"n"`
	Eps       float64 `json:"eps"`
	Enum      string  `json:"enum"` // "faithful" or "sparse" enumeration
	Workers   int     `json:"workers"`
	LevelMode string  `json:"level_mode"`
	Path      string  `json:"path"` // "optimized", "legacy", "auto" or "solve"
	NsPerOp   int64   `json:"ns_per_op"`
	Entries   int64   `json:"table_entries"`
	Configs   int     `json:"configs"`
	// ConfigsSparse and ConfigReduction are set on sparse rows only: the
	// configuration count the sparse pipeline's table retained, and the
	// shrink factor versus the faithful enumeration over the ungrouped
	// classes at the same target (Configs on those rows; 0 when the faithful
	// count overflows the enumeration cap — cells only the sparse
	// enumeration can reach).
	ConfigsSparse   int     `json:"configs_sparse,omitempty"`
	ConfigReduction float64 `json:"config_reduction,omitempty"`
	Speedup         float64 `json:"speedup_vs_legacy,omitempty"`
	// SpeedupSeq is ns/op of the 1-worker optimized sequential fill of the
	// same (workload, family) divided by this record's ns/op — the paper's
	// speedup axis, with the sequential fill as the T(1) reference.
	SpeedupSeq float64 `json:"speedup_vs_seq,omitempty"`
	// SpeedupFaithful, on sparse rows, is the matching faithful cell's
	// ns/op divided by this record's — the sparsification win (end-to-end
	// on "solve" rows, per-fill on "optimized" rows).
	SpeedupFaithful float64 `json:"speedup_vs_faithful,omitempty"`
}

// benchJSONName is the artifact the acceptance criteria track.
const benchJSONName = "BENCH_dp.json"

// dpBenchConfig carries the dp subcommand's flags.
type dpBenchConfig struct {
	WriteJSON bool    // write the records to Out
	Out       string  // output JSON path (default benchJSONName)
	Baseline  string  // committed BENCH_dp.json to diff against ("" = off)
	Threshold float64 // allowed fractional slowdown before -baseline fails
	// BaselineReport makes the -baseline diff informational: regressions are
	// printed but never fail the run. CI uses this because its shared runners
	// are a different host than the one that committed BENCH_dp.json, so
	// absolute ns/op comparisons carry no cross-host signal.
	BaselineReport bool
	// MinSpeedup, when > 0, fails the run if any adaptive (auto) cell's
	// speedup_vs_seq — measured against the same run's sequential fill, so
	// host speed cancels out — falls below it.
	MinSpeedup float64
	Windows    int // measurement windows per cell (more = less noise)
	// Enum selects the enumeration modes measured: "faithful", "sparse" or
	// "both" ("" = both). Sparse cells bench the ptas-sparse pipeline —
	// end-to-end solves and the sequential fill of the grouped, pruned table
	// at the sparse solve's converged target — next to the faithful cells.
	Enum string
}

// sparseArmEps is the extra epsilon arm the sparse sweep always measures:
// the regime where configuration sparsification pays (k = 10 makes faithful
// configuration sets large), per the acceptance criteria tracked in
// BENCH_dp.json. The primary -eps arm is measured too.
const sparseArmEps = 0.1

// sparseArmMaxEntries caps DP tables on the extra sparseArmEps arm. At
// eps=0.1 some faithful fig2/fig3 cells exceed any practical budget; the cap
// turns them into graceful skips (recorded as missing cells) instead of
// multi-minute fills, and it documents exactly which cells only the sparse
// enumeration can reach.
const sparseArmMaxEntries = 8 << 20

// faithfulConfigCount counts the faithful enumeration's configurations over
// the ungrouped rounded classes at target T — the reference the sparse
// pipeline's config_reduction column divides by. Returns 0 when the count
// exceeds the default enumeration cap (cells only the sparse enumeration
// can reach).
func faithfulConfigCount(in *pcmax.Instance, k int, T pcmax.Time) (int, error) {
	sizes, counts, err := core.RoundedClasses(in, k, T)
	if err != nil || len(sizes) == 0 {
		return 0, err
	}
	cfgs, err := conf.Enumerate(sizes, counts, T, make([]int64, len(sizes)), 0)
	if errors.Is(err, conf.ErrTooMany) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return len(cfgs), nil
}

// measureFill times fill() after one warm-up call. It takes the best of
// several short measurement windows — the minimum is the standard defense
// against GC pauses and frequency wobble contaminating a single window. A
// fill error (context cancellation) aborts the measurement immediately.
func measureFill(fill func() error, windows int) (int64, error) {
	if err := fill(); err != nil {
		return 0, err
	}
	if windows < 1 {
		windows = 1
	}
	const minWindow = 10 * time.Millisecond
	best := int64(0)
	for w := 0; w < windows; w++ {
		reps := 0
		start := time.Now()
		for {
			if err := fill(); err != nil {
				return 0, err
			}
			reps++
			if d := time.Since(start); d >= minWindow && reps >= 3 {
				if ns := d.Nanoseconds() / int64(reps); best == 0 || ns < best {
					best = ns
				}
				break
			}
		}
	}
	return best, nil
}

// runDPBench measures every (shape, family, workers, mode, path) cell and
// renders the result. Table entries are identical between the paths (the
// differential tests enforce it), so ns/op is the only varying quantity.
// The sparse enumeration (unless -enum faithful) adds end-to-end solve cells
// and sparse sequential-fill cells on the primary eps and on an extra
// eps=0.1 arm, where sparsification pays; cells whose table exceeds the
// budget are skipped and reported, not fatal. When ctx dies mid-sweep, the
// cells measured so far are still rendered and the cancellation error is
// returned.
func runDPBench(ctx context.Context, cores []int, eps float64, seed uint64, cfg dpBenchConfig) error {
	cache := dp.NewCache()
	var records []dpRecord
	var benchErr error

	doFaithful := cfg.Enum != "sparse"
	doSparse := cfg.Enum != "faithful"
	epsArms := []float64{eps}
	if doSparse && eps != sparseArmEps {
		epsArms = append(epsArms, sparseArmEps)
	}

	// skipTooLarge reports (and swallows) budget-exceeded cells: at eps=0.1
	// several faithful tables cannot fit any practical budget — that a sparse
	// cell exists where its faithful twin is skipped is itself a result.
	skipTooLarge := func(shape dpShape, fam workload.Family, armEps float64, enum string, err error) bool {
		if errors.Is(err, dp.ErrTableTooLarge) {
			fmt.Printf("skip %s/%s eps=%g %s: %v\n", shape.Name, fam, armEps, enum, err)
			return true
		}
		return false
	}

sweep:
	for _, shape := range dpShapes {
		for _, fam := range workload.SpeedupFamilies {
			in, err := workload.Generate(workload.Spec{Family: fam, M: shape.M, N: shape.N, Seed: seed})
			if err != nil {
				return err
			}
			for _, armEps := range epsArms {
				primary := armEps == eps
				var budget int64
				if !primary {
					budget = sparseArmMaxEntries
				}
				base := dpRecord{
					Workload: shape.Name, Family: fam.String(), M: shape.M, N: shape.N,
					Eps: armEps, Workers: 1, LevelMode: dp.LevelBuckets.String(),
				}

				var faithfulSt *core.Stats
				if doFaithful {
					opts := core.DefaultOptions()
					opts.Epsilon = armEps
					opts.MaxTableEntries = budget
					t0 := time.Now()
					_, st, err := core.Solve(ctx, in, opts)
					solveNs := time.Since(t0).Nanoseconds()
					switch {
					case err == nil:
						faithfulSt = st
						r := base
						r.Enum, r.Path, r.LevelMode = "faithful", "solve", "e2e"
						r.NsPerOp, r.Entries, r.Configs = solveNs, st.TableEntries, st.Configs
						records = append(records, r)
					case skipTooLarge(shape, fam, armEps, "faithful", err):
					default:
						benchErr = err
						break sweep
					}
				}

				// The full fill-path matrix (legacy/optimized/auto across
				// worker counts) runs on the primary eps only; the extra arm
				// exists for the faithful-vs-sparse comparison.
				if faithfulSt != nil && primary {
					st := faithfulSt
					sizes, counts, err := core.RoundedClasses(in, st.K, st.FinalT)
					if err != nil {
						return err
					}
					if len(sizes) == 0 {
						continue // no long jobs at this T; nothing to fill
					}
					tbl, err := dp.NewCached(sizes, counts, st.FinalT, 0, 0, cache)
					if err != nil {
						return err
					}

					measure := func(workers int, mode, path string, fill func() error) bool {
						tbl.LegacyFill = path == "legacy"
						ns, err := measureFill(fill, cfg.Windows)
						if err != nil {
							benchErr = err
							return false
						}
						r := base
						r.Enum, r.Workers, r.LevelMode, r.Path = "faithful", workers, mode, path
						r.NsPerOp, r.Entries, r.Configs = ns, tbl.Sigma, len(tbl.Configs)
						records = append(records, r)
						return true
					}

					// Sequential fill (workers = 1); level mode is moot,
					// report as buckets for a stable key.
					bkt := dp.LevelBuckets.String()
					seq := func() error { return tbl.FillSequentialCtx(ctx) }
					if !measure(1, bkt, "legacy", seq) || !measure(1, bkt, "optimized", seq) {
						break sweep
					}

					for _, workers := range cores {
						if workers <= 1 {
							continue
						}
						// Adaptive path: FillAuto on a persistent barrier
						// pool, the production default through the solver
						// facade. Measured immediately after the sequential
						// reference cells — its speedup_vs_seq column divides
						// the two, so keeping them adjacent in time stops
						// host-load drift from contaminating the ratio.
						bpool := par.NewBarrierPool(workers)
						afill := func() error { return tbl.FillAutoCtx(ctx, bpool) }
						ok := measure(workers, "auto", "auto", afill)
						bpool.Close()
						if !ok {
							break sweep
						}

						pool := par.NewPool(workers)
						for _, mode := range []dp.LevelMode{dp.LevelBuckets, dp.LevelScan} {
							fill := func() error { return tbl.FillParallelCtx(ctx, pool, mode, par.RoundRobin) }
							if !measure(workers, mode.String(), "optimized", fill) || !measure(workers, mode.String(), "legacy", fill) {
								pool.Close()
								break sweep
							}
						}
						pool.Close()
					}
				}

				if doSparse {
					opts := core.DefaultOptions()
					opts.Epsilon = armEps
					opts.Sparsify = true
					opts.MaxTableEntries = budget
					t0 := time.Now()
					_, st, err := core.Solve(ctx, in, opts)
					solveNs := time.Since(t0).Nanoseconds()
					switch {
					case err == nil:
						fc, ferr := faithfulConfigCount(in, st.K, st.FinalT)
						if ferr != nil {
							return ferr
						}
						r := base
						r.Enum, r.Path, r.LevelMode = "sparse", "solve", "e2e"
						r.NsPerOp, r.Entries = solveNs, st.TableEntries
						r.Configs = fc
						r.ConfigsSparse = st.ConfigsAfterSparsification
						if fc > 0 && st.ConfigsAfterSparsification > 0 {
							r.ConfigReduction = float64(fc) / float64(st.ConfigsAfterSparsification)
						}
						records = append(records, r)
						if st.SparseFallback {
							fmt.Printf("note %s/%s eps=%g sparse: fell back to the faithful pipeline\n", shape.Name, fam, armEps)
							continue
						}

						// Sequential fill of the sparse table at the sparse
						// solve's converged target — the per-probe cost the
						// sparsification shrinks.
						gs, gc, err := core.SparseRoundedClasses(in, st.K, st.FinalT, armEps)
						if err != nil {
							return err
						}
						if len(gs) == 0 {
							continue
						}
						tbl, err := dp.NewSparse(gs, gc, st.FinalT, budget, 0, cache, conf.DefaultSparseOptions(st.K))
						if err != nil {
							if skipTooLarge(shape, fam, armEps, "sparse", err) {
								continue
							}
							return err
						}
						ns, err := measureFill(func() error { return tbl.FillSequentialCtx(ctx) }, cfg.Windows)
						if err != nil {
							benchErr = err
							break sweep
						}
						r = base
						r.Enum, r.Path = "sparse", "optimized"
						r.NsPerOp, r.Entries = ns, tbl.Sigma
						r.Configs = fc
						r.ConfigsSparse = len(tbl.Configs)
						if fc > 0 && len(tbl.Configs) > 0 {
							r.ConfigReduction = float64(fc) / float64(len(tbl.Configs))
						}
						records = append(records, r)
					case skipTooLarge(shape, fam, armEps, "sparse", err):
					default:
						benchErr = err
						break sweep
					}
				}
			}
		}
	}

	attachSpeedups(records)
	renderDPRecords(records)
	fmt.Printf("\nDP cache across workloads: %+v\n", cache.Stats())
	if benchErr != nil {
		fmt.Printf("\nsweep interrupted after %d cells: %v\n", len(records), benchErr)
		return benchErr
	}
	if cfg.WriteJSON {
		out := cfg.Out
		if out == "" {
			out = benchJSONName
		}
		blob, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d records)\n", out, len(records))
	}
	if cfg.Baseline != "" {
		if err := compareBaseline(records, cfg.Baseline, cfg.Threshold); err != nil {
			if !cfg.BaselineReport {
				return err
			}
			fmt.Printf("baseline diff is report-only; not failing: %v\n", err)
		}
	}
	if cfg.MinSpeedup > 0 {
		return gateSpeedup(records, cfg.MinSpeedup)
	}
	return nil
}

// gateSpeedup enforces the host-invariant regression gate: every adaptive
// (auto) cell must reach at least min times the speed of this same run's
// 1-worker sequential fill of the same workload. Both sides of the ratio come
// from the same process on the same host minutes apart, so runner speed and
// load cancel out — unlike the cross-host ns/op diff of -baseline, a failure
// here means the adaptive routing itself regressed (e.g. back to paying a
// dispatch round per narrow level).
func gateSpeedup(records []dpRecord, min float64) error {
	var failures []string
	checked := 0
	for _, r := range records {
		if r.Path != "auto" || r.Workers <= 1 || r.SpeedupSeq <= 0 {
			continue
		}
		checked++
		if r.SpeedupSeq < min {
			failures = append(failures,
				fmt.Sprintf("  %s/%s wrk=%d: %.2fx vs same-run sequential (floor %.2fx)",
					r.Workload, r.Family, r.Workers, r.SpeedupSeq, min))
		}
	}
	fmt.Printf("\nspeedup gate: %d auto cells checked against %.2fx floor, %d below\n",
		checked, min, len(failures))
	if len(failures) > 0 {
		sort.Strings(failures)
		for _, f := range failures {
			fmt.Println(f)
		}
		return fmt.Errorf("%d auto cells below the %.2fx same-run speedup floor", len(failures), min)
	}
	return nil
}

// dpKey identifies a benchmark cell across runs for baseline diffing.
type dpKey struct {
	Workload, Family, Mode, Path, Enum string
	Workers                            int
	Eps                                float64
}

// recordKey builds the diff key, normalizing records from baselines written
// before the sparse columns existed (no enum, no eps).
func recordKey(r dpRecord) dpKey {
	enum := r.Enum
	if enum == "" {
		enum = "faithful"
	}
	e := r.Eps
	if e == 0 {
		e = 0.3
	}
	return dpKey{r.Workload, r.Family, r.LevelMode, r.Path, enum, r.Workers, e}
}

// compareBaseline diffs the run's ns/op row-by-row against the committed
// baseline JSON and returns a non-nil error (for a nonzero exit) when any
// shared cell regressed by more than the threshold fraction. Cells present
// on only one side are reported but never fail the gate, so adding or
// retiring benchmark cells does not break CI.
func compareBaseline(records []dpRecord, path string, threshold float64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base []dpRecord
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseNs := make(map[dpKey]int64, len(base))
	for _, r := range base {
		baseNs[recordKey(r)] = r.NsPerOp
	}
	var regressions []string
	compared, missing := 0, 0
	for _, r := range records {
		k := recordKey(r)
		bns, ok := baseNs[k]
		if !ok {
			missing++
			continue
		}
		delete(baseNs, k)
		if bns <= 0 || r.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := float64(r.NsPerOp) / float64(bns)
		if ratio > 1+threshold {
			regressions = append(regressions,
				fmt.Sprintf("  %s/%s wrk=%d mode=%s path=%s: %d -> %d ns/op (%.2fx > %.2fx allowed)",
					k.Workload, k.Family, k.Workers, k.Mode, k.Path, bns, r.NsPerOp, ratio, 1+threshold))
		}
	}
	fmt.Printf("\nbaseline %s: %d cells compared, %d new, %d retired, %d regressions (threshold %.0f%%)\n",
		path, compared, missing, len(baseNs), len(regressions), threshold*100)
	if len(regressions) > 0 {
		sort.Strings(regressions)
		for _, r := range regressions {
			fmt.Println(r)
		}
		return fmt.Errorf("%d benchmark cells regressed beyond %.0f%% vs %s", len(regressions), threshold*100, path)
	}
	return nil
}

// attachSpeedups fills Speedup on each optimized record from its matching
// legacy measurement, SpeedupSeq on every parallel/auto record from the
// 1-worker optimized sequential fill of the same workload, and
// SpeedupFaithful on every sparse record from the faithful cell of the same
// (workload, family, eps, path).
func attachSpeedups(records []dpRecord) {
	type key struct {
		w, f, mode string
		workers    int
		eps        float64
	}
	legacy := make(map[key]int64)
	type seqKey struct {
		w, f string
		eps  float64
	}
	seq := make(map[seqKey]int64)
	type faithKey struct {
		w, f, path string
		eps        float64
	}
	faithful := make(map[faithKey]int64)
	for _, r := range records {
		if r.Enum == "sparse" {
			continue
		}
		if r.Path == "legacy" {
			legacy[key{r.Workload, r.Family, r.LevelMode, r.Workers, r.Eps}] = r.NsPerOp
		}
		if r.Path == "optimized" && r.Workers == 1 {
			seq[seqKey{r.Workload, r.Family, r.Eps}] = r.NsPerOp
		}
		if r.Workers == 1 && (r.Path == "solve" || r.Path == "optimized") {
			faithful[faithKey{r.Workload, r.Family, r.Path, r.Eps}] = r.NsPerOp
		}
	}
	for i := range records {
		r := &records[i]
		if r.NsPerOp <= 0 {
			continue
		}
		if r.Enum == "sparse" {
			if base, ok := faithful[faithKey{r.Workload, r.Family, r.Path, r.Eps}]; ok {
				r.SpeedupFaithful = float64(base) / float64(r.NsPerOp)
			}
			continue
		}
		if r.Path == "optimized" {
			if base, ok := legacy[key{r.Workload, r.Family, r.LevelMode, r.Workers, r.Eps}]; ok {
				r.Speedup = float64(base) / float64(r.NsPerOp)
			}
		}
		if r.Workers > 1 && r.Path != "legacy" {
			if base, ok := seq[seqKey{r.Workload, r.Family, r.Eps}]; ok {
				r.SpeedupSeq = float64(base) / float64(r.NsPerOp)
			}
		}
	}
}

func renderDPRecords(records []dpRecord) {
	fmt.Printf("%-6s %-11s %4s %-8s %3s %4s %8s %-8s %-7s %-5s %-9s %12s %8s %8s %8s\n",
		"fig", "family", "eps", "enum", "wrk", "mode", "entries", "configs", "cfg-sp", "red", "path", "ns/op", "vs-lgcy", "vs-seq", "vs-fthl")
	for _, r := range records {
		speedup, vseq, vf, csp, red := "", "", "", "", ""
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		if r.SpeedupSeq > 0 {
			vseq = fmt.Sprintf("%.2fx", r.SpeedupSeq)
		}
		if r.SpeedupFaithful > 0 {
			vf = fmt.Sprintf("%.2fx", r.SpeedupFaithful)
		}
		if r.Enum == "sparse" {
			csp = fmt.Sprintf("%d", r.ConfigsSparse)
			red = fmt.Sprintf("%.1fx", r.ConfigReduction)
		}
		fmt.Printf("%-6s %-11s %4g %-8s %3d %4s %8d %-8d %-7s %-5s %-9s %12d %8s %8s %8s\n",
			r.Workload, r.Family, r.Eps, r.Enum, r.Workers, shortMode(r.LevelMode), r.Entries, r.Configs,
			csp, red, r.Path, r.NsPerOp, speedup, vseq, vf)
	}
}

func shortMode(m string) string {
	switch m {
	case dp.LevelScan.String():
		return "scan"
	case "auto":
		return "auto"
	case "e2e":
		return "e2e"
	default:
		return "bkt"
	}
}
