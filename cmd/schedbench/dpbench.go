// The dp subcommand micro-benchmarks the DP fill path in isolation: for each
// figure workload it freezes the rounded instance at the PTAS's converged
// target makespan and times the table fill — optimized (Jobs-sorted pruned
// scan, odometer decoding, cached level index) against the legacy seed path
// (full configuration scan, division decoding) — across worker counts and
// level modes. Results print as a table and, with -json, land in
// BENCH_dp.json for regression tracking.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/par"
	"repro/internal/workload"
)

// dpShape names a figure workload: the (m, n) pair of one of the paper's
// speedup experiments.
type dpShape struct {
	Name string
	M, N int
}

// dpShapes mirrors the instance sizes of Figures 2-4.
var dpShapes = []dpShape{
	{"fig2", 20, 100},
	{"fig3", 10, 50},
	{"fig4", 10, 30},
}

// dpRecord is one measured configuration, serialized into BENCH_dp.json.
type dpRecord struct {
	Workload  string  `json:"workload"`
	Family    string  `json:"family"`
	M         int     `json:"m"`
	N         int     `json:"n"`
	Workers   int     `json:"workers"`
	LevelMode string  `json:"level_mode"`
	Path      string  `json:"path"` // "optimized" or "legacy"
	NsPerOp   int64   `json:"ns_per_op"`
	Entries   int64   `json:"table_entries"`
	Configs   int     `json:"configs"`
	Speedup   float64 `json:"speedup_vs_legacy,omitempty"`
}

// benchJSONName is the artifact the acceptance criteria track.
const benchJSONName = "BENCH_dp.json"

// measureFill times fill() after one warm-up call. It takes the best of
// several short measurement windows — the minimum is the standard defense
// against GC pauses and frequency wobble contaminating a single window. A
// fill error (context cancellation) aborts the measurement immediately.
func measureFill(fill func() error) (int64, error) {
	if err := fill(); err != nil {
		return 0, err
	}
	const (
		windows   = 5
		minWindow = 10 * time.Millisecond
	)
	best := int64(0)
	for w := 0; w < windows; w++ {
		reps := 0
		start := time.Now()
		for {
			if err := fill(); err != nil {
				return 0, err
			}
			reps++
			if d := time.Since(start); d >= minWindow && reps >= 3 {
				if ns := d.Nanoseconds() / int64(reps); best == 0 || ns < best {
					best = ns
				}
				break
			}
		}
	}
	return best, nil
}

// runDPBench measures every (shape, family, workers, mode, path) cell and
// renders the result. Table entries are identical between the two paths (the
// differential tests enforce it), so ns/op is the only varying quantity.
// When ctx dies mid-sweep, the cells measured so far are still rendered and
// the cancellation error is returned.
func runDPBench(ctx context.Context, cores []int, eps float64, seed uint64, writeJSON bool) error {
	cache := dp.NewCache()
	var records []dpRecord
	var benchErr error

sweep:
	for _, shape := range dpShapes {
		for _, fam := range workload.SpeedupFamilies {
			in, err := workload.Generate(workload.Spec{Family: fam, M: shape.M, N: shape.N, Seed: seed})
			if err != nil {
				return err
			}
			opts := core.DefaultOptions()
			opts.Epsilon = eps
			_, st, err := core.Solve(ctx, in, opts)
			if err != nil {
				benchErr = err
				break sweep
			}
			sizes, counts, err := core.RoundedClasses(in, st.K, st.FinalT)
			if err != nil {
				return err
			}
			if len(sizes) == 0 {
				continue // no long jobs at this T; nothing to fill
			}
			tbl, err := dp.NewCached(sizes, counts, st.FinalT, 0, 0, cache)
			if err != nil {
				return err
			}

			measure := func(workers int, mode dp.LevelMode, legacy bool, fill func() error) bool {
				tbl.LegacyFill = legacy
				ns, err := measureFill(fill)
				if err != nil {
					benchErr = err
					return false
				}
				path := "optimized"
				if legacy {
					path = "legacy"
				}
				records = append(records, dpRecord{
					Workload: shape.Name, Family: fam.String(), M: shape.M, N: shape.N,
					Workers: workers, LevelMode: mode.String(), Path: path,
					NsPerOp: ns, Entries: tbl.Sigma, Configs: len(tbl.Configs),
				})
				return true
			}

			// Sequential fill (workers = 1); level mode is moot, report as
			// buckets for a stable key.
			seq := func() error { return tbl.FillSequentialCtx(ctx) }
			if !measure(1, dp.LevelBuckets, true, seq) || !measure(1, dp.LevelBuckets, false, seq) {
				break sweep
			}

			for _, workers := range cores {
				if workers <= 1 {
					continue
				}
				pool := par.NewPool(workers)
				for _, mode := range []dp.LevelMode{dp.LevelBuckets, dp.LevelScan} {
					fill := func() error { return tbl.FillParallelCtx(ctx, pool, mode, par.RoundRobin) }
					if !measure(workers, mode, false, fill) || !measure(workers, mode, true, fill) {
						pool.Close()
						break sweep
					}
				}
				pool.Close()
			}
		}
	}

	attachSpeedups(records)
	renderDPRecords(records)
	fmt.Printf("\nDP cache across workloads: %+v\n", cache.Stats())
	if benchErr != nil {
		fmt.Printf("\nsweep interrupted after %d cells: %v\n", len(records), benchErr)
		return benchErr
	}
	if writeJSON {
		blob, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchJSONName, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d records)\n", benchJSONName, len(records))
	}
	return nil
}

// attachSpeedups fills Speedup on each optimized record from its matching
// legacy measurement.
func attachSpeedups(records []dpRecord) {
	type key struct {
		w, f, mode string
		workers    int
	}
	legacy := make(map[key]int64)
	for _, r := range records {
		if r.Path == "legacy" {
			legacy[key{r.Workload, r.Family, r.LevelMode, r.Workers}] = r.NsPerOp
		}
	}
	for i := range records {
		r := &records[i]
		if r.Path != "optimized" {
			continue
		}
		if base, ok := legacy[key{r.Workload, r.Family, r.LevelMode, r.Workers}]; ok && r.NsPerOp > 0 {
			r.Speedup = float64(base) / float64(r.NsPerOp)
		}
	}
}

func renderDPRecords(records []dpRecord) {
	fmt.Printf("%-6s %-11s %3s %4s %8s %-8s %-9s %12s %8s %9s\n",
		"fig", "family", "wrk", "mode", "entries", "configs", "path", "ns/op", "speedup", "")
	for _, r := range records {
		speedup := ""
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Printf("%-6s %-11s %3d %4s %8d %-8d %-9s %12d %8s\n",
			r.Workload, r.Family, r.Workers, shortMode(r.LevelMode), r.Entries, r.Configs,
			r.Path, r.NsPerOp, speedup)
	}
}

func shortMode(m string) string {
	if m == dp.LevelScan.String() {
		return "scan"
	}
	return "bkt"
}
