package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestGateDeltaSpeedup(t *testing.T) {
	recs := []deltaRecord{
		{Workload: "fig2", Family: "uniform", SpeedupCold: 8.5},
		{Workload: "fig3", Family: "uniform", SpeedupCold: 1.2},
	}
	if err := gateDeltaSpeedup(recs, 3); err == nil {
		t.Fatal("want failure: a stream sits below the floor")
	}
	if err := gateDeltaSpeedup(recs, 1.0); err != nil {
		t.Fatalf("all streams above floor, got %v", err)
	}
	if err := gateDeltaSpeedup(nil, 3); err != nil {
		t.Fatalf("no streams, got %v", err)
	}
}

func TestRunDeltaStreamCertifiesEveryStep(t *testing.T) {
	// A short stream on a small shape: the in-line warm-vs-cold certificate
	// check runs on every step, so a nil error already proves the
	// differential property for this stream.
	rec, err := runDeltaStream(context.Background(), dpShape{"fig4", 10, 30}, workload.U1_100, 0.3, 2017, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Steps != 6 || rec.RepairSteps+rec.WarmSteps != 6 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.WarmNs <= 0 || rec.ColdNs <= 0 || rec.SpeedupCold <= 0 {
		t.Fatalf("missing timings: %+v", rec)
	}
}

func TestRunDeltaBenchWritesArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("full 18-stream sweep")
	}
	out := filepath.Join(t.TempDir(), "BENCH_delta.json")
	err := runDeltaBench(context.Background(), 0.3, 2017, deltaBenchConfig{
		WriteJSON: true,
		Out:       out,
		Steps:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var recs []deltaRecord
	if err := json.Unmarshal(blob, &recs); err != nil {
		t.Fatal(err)
	}
	// One stream per (3 figure shapes x 6 families).
	if len(recs) != 18 {
		t.Fatalf("artifact holds %d records, want 18", len(recs))
	}
	for _, r := range recs {
		if r.SpeedupCold <= 0 || r.Steps != 3 {
			t.Fatalf("bad record %+v", r)
		}
	}
}
