// The delta subcommand benchmarks incremental solving: for each figure
// workload it opens a solver.Session, drives a deterministic stream of
// 1-job mutations (swap, add, remove in rotation) and times every warm
// SolveDelta against a cold solver.PTAS of the identical mutated instance.
// The speedup_vs_cold column is a same-run ratio — both sides run in this
// process seconds apart, so host speed cancels out — and -gate-speedup
// enforces a floor on it, exactly like the dp subcommand's gate. Every warm
// result is cross-checked against the cold solve's (1+eps) certificate
// in-line; a violation fails the run. Results print as a table and, with
// -json, land in BENCH_delta.json.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/rng"
	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// deltaJSONName is the delta subcommand's artifact.
const deltaJSONName = "BENCH_delta.json"

// deltaRecord is one (workload, family) mutation stream, serialized into
// BENCH_delta.json.
type deltaRecord struct {
	Workload string  `json:"workload"`
	Family   string  `json:"family"`
	M        int     `json:"m"`
	N        int     `json:"n"`
	Eps      float64 `json:"eps"`
	Steps    int     `json:"steps"`
	// WarmNs and ColdNs are mean ns per re-solve across the stream: warm is
	// Session.SolveDelta, cold is solver.PTAS on the same mutated instance.
	WarmNs int64 `json:"warm_ns_per_op"`
	ColdNs int64 `json:"cold_ns_per_op"`
	// SpeedupCold is ColdNs/WarmNs — same-run and host-invariant, the number
	// -gate-speedup checks.
	SpeedupCold float64 `json:"speedup_vs_cold"`
	// RepairSteps and WarmSteps split the stream by accepted fast path
	// (DeltaRepair vs DeltaWarm; SolveDelta never reports DeltaCold unless
	// a defensive restart fired, counted under WarmSteps here).
	RepairSteps int `json:"repair_steps"`
	WarmSteps   int `json:"warm_steps"`
	// CacheHitRate is the session cache's lifetime config-lookup hit rate at
	// the end of the stream (fast path 3 at work across the deltas).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// deltaBenchConfig carries the delta subcommand's flags.
type deltaBenchConfig struct {
	WriteJSON  bool
	Out        string  // output JSON path (default deltaJSONName)
	MinSpeedup float64 // floor on speedup_vs_cold (0 = off)
	Steps      int     // mutations per stream
}

// runDeltaBench drives one mutation stream per (figure shape, family) cell
// and renders the results. When ctx dies mid-sweep the cells measured so far
// are rendered and the cancellation error returned.
func runDeltaBench(ctx context.Context, eps float64, seed uint64, cfg deltaBenchConfig) error {
	if cfg.Steps < 1 {
		cfg.Steps = 12
	}
	var records []deltaRecord
	var benchErr error

sweep:
	for _, shape := range dpShapes {
		for _, fam := range workload.Families {
			rec, err := runDeltaStream(ctx, shape, fam, eps, seed, cfg.Steps)
			if err != nil {
				benchErr = err
				break sweep
			}
			if cfg.MinSpeedup > 0 && rec.SpeedupCold < cfg.MinSpeedup {
				// The stream is deterministic (same seed, same mutations), so a
				// re-run measures identical work; one retry absorbs transient
				// host load before the gate judges the stream. Keep the faster
				// measurement, the standard best-of-N hygiene.
				again, err := runDeltaStream(ctx, shape, fam, eps, seed, cfg.Steps)
				if err != nil {
					benchErr = err
					break sweep
				}
				if again.SpeedupCold > rec.SpeedupCold {
					rec = again
				}
			}
			records = append(records, *rec)
		}
	}

	renderDeltaRecords(records)
	if benchErr != nil {
		fmt.Printf("\nsweep interrupted after %d cells: %v\n", len(records), benchErr)
		return benchErr
	}
	if cfg.WriteJSON {
		out := cfg.Out
		if out == "" {
			out = deltaJSONName
		}
		blob, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d records)\n", out, len(records))
	}
	if cfg.MinSpeedup > 0 {
		return gateDeltaSpeedup(records, cfg.MinSpeedup)
	}
	return nil
}

// runDeltaStream opens a session on one generated instance and walks Steps
// 1-job mutations, timing warm vs cold and cross-checking the certificate
// after every step.
func runDeltaStream(ctx context.Context, shape dpShape, fam workload.Family, eps float64, seed uint64, steps int) (*deltaRecord, error) {
	in, err := workload.Generate(workload.Spec{Family: fam, M: shape.M, N: shape.N, Seed: seed})
	if err != nil {
		return nil, err
	}
	lo, hi, err := fam.Bounds(shape.M, shape.N)
	if err != nil {
		return nil, err
	}
	src := rng.New(seed ^ 0x5eed_de17a)

	sopts := solver.DefaultSessionOptions()
	sopts.PTAS.Epsilon = eps
	sess, err := solver.NewSession(sopts)
	if err != nil {
		return nil, err
	}
	if _, _, err := sess.Solve(ctx, in); err != nil {
		return nil, err
	}

	popts := solver.DefaultPTASOptions()
	popts.Epsilon = eps

	rec := &deltaRecord{
		Workload: shape.Name, Family: fam.String(), M: shape.M, N: shape.N,
		Eps: eps, Steps: steps,
	}
	var warmTotal, coldTotal int64
	for step := 0; step < steps; step++ {
		// 1-job mutations in rotation: swap, add, remove. The swap keeps n
		// stable; add/remove cancel out over the stream.
		var add []pcmax.Time
		var remove []int
		n := sess.Instance().N()
		switch step % 3 {
		case 0:
			add = []pcmax.Time{pcmax.Time(src.MustUniform(lo, hi))}
			remove = []int{src.Intn(n)}
		case 1:
			add = []pcmax.Time{pcmax.Time(src.MustUniform(lo, hi))}
		default:
			remove = []int{src.Intn(n)}
		}

		t0 := time.Now()
		_, st, err := sess.SolveDelta(ctx, add, remove)
		warmNs := time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("%s/%s step %d: %w", shape.Name, fam, step, err)
		}
		warmTotal += warmNs
		if st.Path == solver.DeltaRepair {
			rec.RepairSteps++
		} else {
			rec.WarmSteps++
		}

		// Cold reference on the identical mutated instance, plus the
		// differential certificate: the warm makespan must stay within
		// (1+eps) of the cold solve (coldMS >= OPT, warmMS <= (1+eps)OPT).
		cur := sess.Instance()
		t0 = time.Now()
		coldSched, _, err := solver.PTAS(ctx, cur, popts)
		coldNs := time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("%s/%s step %d cold: %w", shape.Name, fam, step, err)
		}
		coldTotal += coldNs
		coldMS := coldSched.Makespan(cur)
		if float64(st.Makespan) > (1+eps)*float64(coldMS)+1e-9 {
			return nil, fmt.Errorf("%s/%s step %d: warm makespan %d exceeds (1+eps) of cold %d (path %v)",
				shape.Name, fam, step, st.Makespan, coldMS, st.Path)
		}
	}
	rec.WarmNs = warmTotal / int64(steps)
	rec.ColdNs = coldTotal / int64(steps)
	if rec.WarmNs > 0 {
		rec.SpeedupCold = float64(rec.ColdNs) / float64(rec.WarmNs)
	}
	cs := sess.CacheStats()
	if lookups := cs.ConfigHits + cs.ConfigMisses; lookups > 0 {
		rec.CacheHitRate = float64(cs.ConfigHits) / float64(lookups)
	}
	return rec, nil
}

// gateDeltaSpeedup enforces the warm-path regression gate: every stream's
// speedup_vs_cold must reach the floor. Both sides of the ratio come from
// this run, so the gate is host-invariant — a failure means the incremental
// paths themselves regressed (e.g. repairs no longer accepted, or the warm
// bracket no longer cutting probes).
func gateDeltaSpeedup(records []deltaRecord, min float64) error {
	var failures []string
	for _, r := range records {
		if r.SpeedupCold < min {
			failures = append(failures,
				fmt.Sprintf("  %s/%s: %.2fx vs same-run cold (floor %.2fx)",
					r.Workload, r.Family, r.SpeedupCold, min))
		}
	}
	fmt.Printf("\ndelta speedup gate: %d streams checked against %.2fx floor, %d below\n",
		len(records), min, len(failures))
	if len(failures) > 0 {
		sort.Strings(failures)
		for _, f := range failures {
			fmt.Println(f)
		}
		return fmt.Errorf("%d mutation streams below the %.2fx warm-vs-cold speedup floor", len(failures), min)
	}
	return nil
}

func renderDeltaRecords(records []deltaRecord) {
	fmt.Printf("%-6s %-11s %3s %4s %4s %6s %6s %12s %12s %9s %8s\n",
		"fig", "family", "m", "n", "eps", "repair", "warm", "warm-ns/op", "cold-ns/op", "vs-cold", "cache")
	for _, r := range records {
		fmt.Printf("%-6s %-11s %3d %4d %4g %6d %6d %12d %12d %8.2fx %7.0f%%\n",
			r.Workload, r.Family, r.M, r.N, r.Eps, r.RepairSteps, r.WarmSteps,
			r.WarmNs, r.ColdNs, r.SpeedupCold, r.CacheHitRate*100)
	}
}
