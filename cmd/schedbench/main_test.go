package main

import "testing"

func TestParseCores(t *testing.T) {
	got, err := parseCores("1,2, 4 ,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseCoresErrors(t *testing.T) {
	for _, bad := range []string{"", "a", "0", "-2", "1,x"} {
		if _, err := parseCores(bad); err == nil {
			t.Fatalf("parseCores(%q) should fail", bad)
		}
	}
}

func TestParseCoresSkipsEmptyParts(t *testing.T) {
	got, err := parseCores("1,,2")
	if err != nil || len(got) != 2 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRunRequiresExperiment(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("want usage error with no experiment")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig9"}); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestRunBadCoresFlag(t *testing.T) {
	if err := run([]string{"-cores", "zero", "fig2"}); err == nil {
		t.Fatal("want error for bad cores")
	}
}
