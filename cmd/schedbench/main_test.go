package main

import "testing"

func TestParseCores(t *testing.T) {
	got, err := parseCores("1,2, 4 ,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseCoresErrors(t *testing.T) {
	for _, bad := range []string{"", "a", "0", "-2", "1,x"} {
		if _, err := parseCores(bad); err == nil {
			t.Fatalf("parseCores(%q) should fail", bad)
		}
	}
}

func TestParseCoresSkipsEmptyParts(t *testing.T) {
	got, err := parseCores("1,,2")
	if err != nil || len(got) != 2 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRunRequiresExperiment(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("want usage error with no experiment")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig9"}); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestRunBadCoresFlag(t *testing.T) {
	if err := run([]string{"-cores", "zero", "fig2"}); err == nil {
		t.Fatal("want error for bad cores")
	}
}

func TestGateSpeedup(t *testing.T) {
	recs := []dpRecord{
		{Workload: "fig2", Family: "uniform", Workers: 4, Path: "auto", SpeedupSeq: 1.42},
		{Workload: "fig3", Family: "uniform", Workers: 4, Path: "auto", SpeedupSeq: 0.31},
		// Non-auto and 1-worker cells are outside the gate.
		{Workload: "fig2", Family: "uniform", Workers: 4, Path: "optimized", SpeedupSeq: 0.01},
		{Workload: "fig2", Family: "uniform", Workers: 1, Path: "auto"},
	}
	if err := gateSpeedup(recs, 0.5); err == nil {
		t.Fatal("want failure: an auto cell sits below the floor")
	}
	if err := gateSpeedup(recs, 0.2); err != nil {
		t.Fatalf("all auto cells above floor, got %v", err)
	}
	if err := gateSpeedup(recs[:1], 0.5); err != nil {
		t.Fatalf("single passing cell, got %v", err)
	}
}
