// Command schedbench regenerates the paper's evaluation: the speedup and
// running-time figures (fig2, fig3, fig4), the approximation-ratio tables
// and panels (ratios = Tables II/III + Figure 5), or everything (all).
//
// Usage:
//
//	schedbench [flags] {fig2|fig3|fig4|ratios|all}
//
// Speedups are printed from the paper's Section IV cost model, calibrated by
// measured sequential fills (see DESIGN.md), next to the measured wall-clock
// numbers for this host.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/exper"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("schedbench", flag.ContinueOnError)
	var (
		reps     = fs.Int("reps", 5, "random instances per type (paper: 20)")
		cores    = fs.String("cores", "1,2,4,8,16", "comma-separated worker counts")
		eps      = fs.Float64("eps", 0.3, "PTAS relative error (paper: 0.3)")
		seed     = fs.Uint64("seed", 2017, "base RNG seed")
		exactSec = fs.Duration("exact-timeout", 30*time.Second, "time limit per exact solve")
		algoSec  = fs.Duration("algo-timeout", 0, "deadline per algorithm invocation (0 = none); timed-out cells are logged and skipped")
		noWall   = fs.Bool("no-wallclock", false, "skip measured wall-clock parallel runs")
		faithful = fs.Bool("paper-faithful", false, "use the presentation-faithful DP variants")
		csv      = fs.Bool("csv", false, "render tables as CSV")
		jsonOut  = fs.Bool("json", false, "dp: also write results to the -out file")
		jsonPath = fs.String("out", benchJSONName, "dp: output path for -json")
		baseline = fs.String("baseline", "", "dp: diff ns/op against this committed BENCH_dp.json and exit nonzero on regressions")
		baseTol  = fs.Float64("baseline-threshold", 0.30, "dp: allowed fractional slowdown vs -baseline before failing")
		baseRpt  = fs.Bool("baseline-report-only", false, "dp: print -baseline regressions without failing (for cross-host CI runs)")
		gateSpd  = fs.Float64("gate-speedup", 0, "dp: fail when any auto cell's same-run speedup_vs_seq falls below this floor; delta: floor on speedup_vs_cold (0 = off)")
		windows  = fs.Int("windows", 5, "dp: measurement windows per cell (lower = faster, noisier)")
		steps    = fs.Int("steps", 12, "delta: 1-job mutations per stream")
		enum     = fs.String("enum", "both", "dp: configuration enumeration modes to bench {faithful|sparse|both}")
		deadline = fs.Duration("deadline", 0, "overall deadline for the whole run (0 = none)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: schedbench [flags] {fig2|fig3|fig4|figS|ratios|epsilon|hard|ablations|dp|delta|variants|all}")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The -out default names the dp artifact; the delta subcommand writes its
	// own artifact unless the caller set -out explicitly.
	outSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment name, got %d args", fs.NArg())
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "schedbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "schedbench:", err)
			}
		}()
	}

	cfg := exper.DefaultConfig()
	cfg.Reps = *reps
	cfg.Epsilon = *eps
	cfg.Seed = *seed
	cfg.ExactTimeLimit = *exactSec
	cfg.AlgoTimeout = *algoSec
	cfg.WallClock = !*noWall
	cfg.PaperFaithful = *faithful
	cfg.CSV = *csv
	parsed, err := parseCores(*cores)
	if err != nil {
		return err
	}
	cfg.Cores = parsed

	// One root context bounds the whole run; every experiment entry point
	// threads it down to the innermost solver loops.
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	runFig := func(f func(context.Context) (*exper.SpeedupResult, error)) error {
		res, err := f(ctx)
		if err != nil {
			return err
		}
		return res.Render(cfg)
	}
	runRatios := func() error {
		a, err := cfg.RunFig5a(ctx)
		if err != nil {
			return err
		}
		if err := a.Render(cfg, "Table II: best-case instances", "fig5(a): actual approximation ratios (best cases)"); err != nil {
			return err
		}
		b, err := cfg.RunFig5b(ctx)
		if err != nil {
			return err
		}
		return b.Render(cfg, "Table III: worst-case instances", "fig5(b): actual approximation ratios (worst cases)")
	}

	runAblations := func() error {
		res, err := cfg.RunAblations(ctx)
		if err != nil {
			return err
		}
		return res.Render(cfg)
	}

	switch fs.Arg(0) {
	case "fig2":
		return runFig(cfg.RunFig2)
	case "fig3":
		return runFig(cfg.RunFig3)
	case "fig4":
		return runFig(cfg.RunFig4)
	case "figS":
		return runFig(cfg.RunFigS)
	case "ratios":
		return runRatios()
	case "ablations":
		return runAblations()
	case "epsilon":
		res, err := cfg.RunEpsilonSweep(ctx, 20, 100, nil)
		if err != nil {
			return err
		}
		return res.Render(cfg)
	case "dp":
		switch *enum {
		case "faithful", "sparse", "both", "":
		default:
			return fmt.Errorf("bad -enum %q (want faithful, sparse or both)", *enum)
		}
		return runDPBench(ctx, cfg.Cores, cfg.Epsilon, cfg.Seed, dpBenchConfig{
			WriteJSON:      *jsonOut,
			Out:            *jsonPath,
			Baseline:       *baseline,
			Threshold:      *baseTol,
			BaselineReport: *baseRpt,
			MinSpeedup:     *gateSpd,
			Windows:        *windows,
			Enum:           *enum,
		})
	case "delta":
		out := *jsonPath
		if !outSet {
			out = deltaJSONName
		}
		return runDeltaBench(ctx, cfg.Epsilon, cfg.Seed, deltaBenchConfig{
			WriteJSON:  *jsonOut,
			Out:        out,
			MinSpeedup: *gateSpd,
			Steps:      *steps,
		})
	case "hard":
		res, err := cfg.RunHard(ctx, nil, 0)
		if err != nil {
			return err
		}
		return res.Render(cfg)
	case "variants":
		res, err := cfg.RunVariants(ctx, 3, 10)
		if err != nil {
			return err
		}
		return res.Render(cfg)
	case "all":
		for _, f := range []func(context.Context) (*exper.SpeedupResult, error){cfg.RunFig2, cfg.RunFig3, cfg.RunFig4, cfg.RunFigS} {
			if err := runFig(f); err != nil {
				return err
			}
		}
		if err := runRatios(); err != nil {
			return err
		}
		return runAblations()
	default:
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", fs.Arg(0))
	}
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no core counts in %q", s)
	}
	return out, nil
}
