package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// runDemo runs schedlint over the testdata/demo module and returns the
// exit code with the captured streams.
func runDemo(t *testing.T, args ...string) (int, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	t.Chdir(filepath.Join("testdata", "demo"))
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, &out, &errb
}

// TestJSONGolden locks the -json report byte-for-byte against the checked-in
// golden file, so the output schema CI archives cannot drift silently.
// Refresh from the repo root with:
//
//	go build -o /tmp/schedlint ./cmd/schedlint
//	(cd cmd/schedlint/testdata/demo && /tmp/schedlint -json > ../demo.golden.json)
func TestJSONGolden(t *testing.T) {
	code, out, errb := runDemo(t, "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (the demo module has findings); stderr: %s", code, errb)
	}
	want, err := os.ReadFile(filepath.Join("..", "demo.golden.json"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output differs from golden:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

// TestJSONSchema checks the shape of every finding object: exactly the five
// documented fields with the right JSON types.
func TestJSONSchema(t *testing.T) {
	code, out, _ := runDemo(t, "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(findings) == 0 {
		t.Fatalf("demo module should produce findings")
	}
	seen := map[string]bool{}
	for i, f := range findings {
		if len(f) != 5 {
			t.Errorf("finding %d has %d fields, want 5: %v", i, len(f), f)
		}
		for _, key := range []string{"file", "check", "message"} {
			if _, ok := f[key].(string); !ok {
				t.Errorf("finding %d: %q should be a string: %v", i, key, f[key])
			}
		}
		for _, key := range []string{"line", "col"} {
			if _, ok := f[key].(float64); !ok {
				t.Errorf("finding %d: %q should be a number: %v", i, key, f[key])
			}
		}
		if check, ok := f["check"].(string); ok {
			seen[check] = true
		}
	}
	// The value-flow analyzers' diagnostics go through the same schema.
	for _, check := range []string{"boundsproof", "intoverflow", "escape"} {
		if !seen[check] {
			t.Errorf("demo module should produce a %s finding", check)
		}
	}
}

// TestOnlyList: -only takes a comma-separated list — the shape the CI gate
// uses to name the value-flow analyzers — and keeps exactly those checks'
// findings.
func TestOnlyList(t *testing.T) {
	code, out, errb := runDemo(t, "-json", "-only", "intoverflow,boundsproof,escape")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb)
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	counts := map[string]int{}
	for _, f := range findings {
		counts[f["check"].(string)] = counts[f["check"].(string)] + 1
	}
	want := map[string]int{"intoverflow": 1, "boundsproof": 1, "escape": 1}
	if len(findings) != 3 || counts["intoverflow"] != 1 || counts["boundsproof"] != 1 || counts["escape"] != 1 {
		t.Errorf("got %d findings with counts %v, want exactly %v", len(findings), counts, want)
	}
}

// TestOutFile checks that -out writes the same report to a file, and that
// -only narrows the report (but not the exit-relevant run) to one check.
func TestOutFile(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "schedlint.json")
	code, out, errb := runDemo(t, "-json", "-out", outPath, "-only", "lintdirective")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("read -out file: %v", err)
	}
	if !bytes.Equal(data, out.Bytes()) {
		t.Errorf("-out file differs from stdout")
	}
	var findings []map[string]any
	if err := json.Unmarshal(data, &findings); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("want 1 lintdirective finding, got %d: %v", len(findings), findings)
	}
	if findings[0]["check"] != "lintdirective" {
		t.Errorf("check = %v, want lintdirective", findings[0]["check"])
	}
}

// TestOnlyCleanAndUnknown: a check with no findings exits 0 under -only;
// an unknown check name is a usage error (2).
func TestOnlyClean(t *testing.T) {
	code, out, _ := runDemo(t, "-only", "maporder")
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (demo has no maporder findings)", code)
	}
	if out.Len() != 0 {
		t.Errorf("expected empty report, got %q", out)
	}
}

func TestOnlyUnknown(t *testing.T) {
	code, _, errb := runDemo(t, "-only", "nosuchcheck")
	if code != 2 {
		t.Errorf("exit code = %d, want 2; stderr: %s", code, errb)
	}
}

// TestParallelMatchesDefault: -parallel fan-out must not change the report.
func TestParallelMatchesDefault(t *testing.T) {
	code1, out1, _ := runDemo(t, "-json")
	t.Chdir(filepath.Join("..", ".."))
	code4, out4, _ := runDemo(t, "-json", "-parallel", "4")
	if code1 != code4 || !bytes.Equal(out1.Bytes(), out4.Bytes()) {
		t.Errorf("-parallel changed the report (codes %d/%d)", code1, code4)
	}
}
