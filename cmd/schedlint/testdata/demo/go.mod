module example.com/demo

go 1.22
