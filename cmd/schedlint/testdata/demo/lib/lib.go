// Package lib produces a small, stable finding set for the golden-output
// test: a malformed suppression directive, and one go statement that trips
// both the join check and the termination check.
package lib

//lint:ignore maporder
func Spin() {
	go func() {
		for {
		}
	}()
}
