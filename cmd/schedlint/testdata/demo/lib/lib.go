// Package lib produces a small, stable finding set for the golden-output
// test: a malformed suppression directive, one go statement that trips
// both the join check and the termination check, and one finding from each
// value-flow analyzer (boundsproof, intoverflow, escape).
package lib

//lint:ignore maporder
func Spin() {
	go func() {
		for {
		}
	}()
}

// At indexes with an unguarded parameter.
//
//lint:hotpath demo kernel
func At(xs []int64, i int) int64 {
	return xs[i]
}

// Total accumulates untrusted values with no cap.
//
//lint:parseroot demo decoder
func Total(vals []int64) int64 {
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// Build returns a parameter-sized buffer.
//
//lint:hotpath demo builder
func Build(n int) []int64 {
	return make([]int64, n)
}
