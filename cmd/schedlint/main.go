// Command schedlint runs the repository's static-analysis suite: six
// analyzers (see internal/lint and ALGORITHM.md §9) that machine-check the
// concurrency and determinism invariants the scheduler depends on —
// deterministic RNG only through internal/rng, context threaded through
// every blocking solver entry point, no unjoined goroutines, no map
// iteration order leaking into results, no undocumented library panics,
// and no by-value copies of the parallel substrate's lock-bearing types.
//
// Usage:
//
//	schedlint [-json] [packages]
//
// schedlint always analyzes the whole module containing the working
// directory; package arguments (./...) are accepted for command-line
// familiarity but do not narrow the run — the invariants are module-wide.
// Findings print as file:line:col: check: message (or a JSON array with
// -json) and any finding makes the exit status 1. Suppress an individual
// finding with a trailing or preceding comment:
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory; malformed directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	listChecks := flag.Bool("checks", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: schedlint [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listChecks {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(root, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
