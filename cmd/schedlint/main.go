// Command schedlint runs the repository's static-analysis suite: sixteen
// analyzers (see internal/lint and ALGORITHM.md §9/§11/§14/§16) that
// machine-check the concurrency, determinism and value-flow invariants the
// scheduler depends on — deterministic RNG only through internal/rng,
// context threaded through every blocking solver entry point, no unjoined
// goroutines, no map iteration order leaking into results, no undocumented
// library panics, no by-value copies of the parallel substrate's
// lock-bearing types, no mixing of atomic and plain access to one word, a
// consistent mutex acquisition order, no unterminatable goroutines
// reachable from exported functions, WaitGroup accounting balanced on every
// path, non-escaping allocation in //lint:hotpath kernels (escape, with
// hotalloc covering append and interface boxing), provably in-bounds
// indexing in those kernels (boundsproof), provably overflow-free
// arithmetic reachable from the //lint:parseroot readers (intoverflow),
// every write reachable from a parallel region proven race-free under the
// may-happen-in-parallel model (sharedwrite, with //lint:hbimpl excusing
// synchronization the model cannot see), and every loop on a
// solver-entry-to-//lint:hotpath path polling cancellation with a proven
// stride of at most 2^16 iterations (cancelpoll).
//
// Usage:
//
//	schedlint [-json] [-out file] [-only check,...] [-parallel N] [-v]
//	          [-suppressions] [-mhp-dump file] [-time-budget d] [packages]
//
// schedlint always analyzes the whole module containing the working
// directory; package arguments (./...) are accepted for command-line
// familiarity but do not narrow the run — the invariants are module-wide.
// -only takes one check name or a comma-separated list and narrows the
// report (not the run) to those checks. Findings print as
// file:line:col: check: message (or a JSON array with -json) and any
// finding makes the exit status 1. Suppress an individual finding with a
// trailing or preceding comment:
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory; malformed directives are themselves findings.
// -suppressions audits the directives instead of reporting findings: every
// //lint:ignore that no longer suppresses anything is stale, printed, and
// makes the exit status 1 (scripts/check.sh gates on zero stale).
// -mhp-dump writes the may-happen-in-parallel engine's region/access
// classification to a JSON file — the auditable artifact behind
// sharedwrite's verdicts. -time-budget fails the run (exit 3) if any single
// analyzer exceeds the given wall-time budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is one schedlint invocation's parsed flags.
type config struct {
	jsonOut      bool
	outFile      string
	only         string
	parallel     int
	verbose      bool
	suppressions bool
	mhpDump      string
	timeBudget   time.Duration
}

// run is the testable entry point: parses flags, runs the suite, writes the
// report, and returns the process exit code (0 clean, 1 findings, 2 errors).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit findings as a JSON array")
	fs.StringVar(&cfg.outFile, "out", "", "also write the report to this file (implies the same format as stdout)")
	fs.StringVar(&cfg.only, "only", "", "report only findings of these comma-separated checks (others still run; the suite is module-wide)")
	fs.IntVar(&cfg.parallel, "parallel", 0, "analysis worker goroutines (0 = GOMAXPROCS)")
	fs.BoolVar(&cfg.verbose, "v", false, "print load and per-analyzer wall time to stderr")
	fs.BoolVar(&cfg.suppressions, "suppressions", false, "audit //lint:ignore directives: print stale ones (suppressing nothing) and exit 1 if any")
	fs.StringVar(&cfg.mhpDump, "mhp-dump", "", "write the may-happen-in-parallel region/access classification to this JSON file")
	fs.DurationVar(&cfg.timeBudget, "time-budget", 0, "fail (exit 3) if any single analyzer exceeds this wall-time budget")
	listChecks := fs.Bool("checks", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: schedlint [-json] [-out file] [-only check,...] [-parallel N] [-v] [-suppressions] [-mhp-dump file] [-time-budget d] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *listChecks {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	only := map[string]bool{}
	if cfg.only != "" {
		for _, name := range strings.Split(cfg.only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			known := name == lint.DirectiveCheck
			for _, a := range analyzers {
				if a.Name == name {
					known = true
					break
				}
			}
			if !known {
				fmt.Fprintf(stderr, "schedlint: -only %s: unknown check (see -checks)\n", name)
				return 2
			}
			only[name] = true
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "schedlint: %v\n", err)
		return 2
	}
	loadStart := time.Now()
	mod, err := lint.LoadModuleParallel(root, cfg.parallel)
	if err != nil {
		fmt.Fprintf(stderr, "schedlint: %v\n", err)
		return 2
	}
	loadTime := time.Since(loadStart)
	diags, timings, sups := lint.RunOnModuleFull(mod, analyzers, cfg.parallel)
	if cfg.verbose {
		fmt.Fprintf(stderr, "schedlint: load %8.1fms  (%d packages)\n", millis(loadTime), len(mod.Packages))
		for _, t := range timings {
			fmt.Fprintf(stderr, "schedlint: %-12s %8.1fms\n", t.Name, millis(t.Elapsed))
		}
	}
	if cfg.mhpDump != "" {
		if err := writeMHPDump(cfg.mhpDump, mod); err != nil {
			fmt.Fprintf(stderr, "schedlint: %v\n", err)
			return 2
		}
	}
	if cfg.timeBudget > 0 {
		over := false
		for _, t := range timings {
			if t.Elapsed > cfg.timeBudget {
				fmt.Fprintf(stderr, "schedlint: analyzer %s spent %.1fms, over the %s budget\n", t.Name, millis(t.Elapsed), cfg.timeBudget)
				over = true
			}
		}
		if over {
			return 3
		}
	}
	if cfg.suppressions {
		stale := 0
		for _, s := range sups {
			if s.Used {
				continue
			}
			stale++
			fmt.Fprintf(stdout, "%s:%d:%d: stale suppression: //lint:ignore %s %s suppresses nothing; delete it\n",
				s.File, s.Line, s.Col, s.Check, s.Reason)
		}
		if stale > 0 {
			return 1
		}
		return 0
	}
	if len(only) > 0 {
		kept := diags[:0]
		for _, d := range diags {
			if only[d.Check] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	if err := writeReport(stdout, cfg.jsonOut, diags); err != nil {
		fmt.Fprintf(stderr, "schedlint: %v\n", err)
		return 2
	}
	if cfg.outFile != "" {
		f, err := os.Create(cfg.outFile)
		if err == nil {
			err = writeReport(f, cfg.jsonOut, diags)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "schedlint: %v\n", err)
			return 2
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// writeMHPDump writes the MHP engine's region/access classification as
// indented JSON — the auditable artifact behind sharedwrite's verdicts.
func writeMHPDump(path string, mod *lint.Module) error {
	regions := lint.MHPDumpModule(mod)
	if regions == nil {
		regions = []lint.MHPRegionDump{}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(regions)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeReport renders the findings: one line per finding, or an indented
// JSON array (never null — an empty run is []) when jsonOut is set.
func writeReport(w io.Writer, jsonOut bool, diags []lint.Diagnostic) error {
	if !jsonOut {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		_, err := io.WriteString(w, b.String())
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if diags == nil {
		diags = []lint.Diagnostic{}
	}
	return enc.Encode(diags)
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
