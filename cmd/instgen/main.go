// Command instgen generates random P||Cmax instances from the paper's
// distribution families and writes them in the text format read by
// cmd/psched.
//
// Usage:
//
//	instgen -family "U(1,100)" -m 20 -n 100 -seed 7 > instance.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/workload"
	"repro/pcmax"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "instgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("instgen", flag.ContinueOnError)
	var (
		family = fs.String("family", "U(1,100)", `distribution family: "U(1,2m-1)", "U(1,100)", "U(1,10)", "U(1,10n)", "U(m,2m-1)", "U(95,105)"`)
		m      = fs.Int("m", 10, "number of machines")
		n      = fs.Int("n", 50, "number of jobs (ignored with -lpt-adversarial)")
		seed   = fs.Uint64("seed", 1, "RNG seed")
		adv    = fs.Bool("lpt-adversarial", false, "emit the deterministic LPT worst-case instance for m machines (n=2m+1)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: instgen [flags] > instance.txt")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	var (
		in  *pcmax.Instance
		err error
	)
	if *adv {
		in, err = workload.AdversarialLPT(*m)
	} else {
		var fam workload.Family
		fam, err = workload.ParseFamily(*family)
		if err != nil {
			return err
		}
		in, err = workload.Generate(workload.Spec{Family: fam, M: *m, N: *n, Seed: *seed})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# P||Cmax instance: family=%s m=%d n=%d seed=%d\n", *family, in.M, in.N(), *seed)
	return pcmax.WriteText(stdout, in)
}
