// Command instgen generates random P||Cmax instances from the paper's
// distribution families and writes them in the text format read by
// cmd/psched.
//
// Usage:
//
//	instgen -family "U(1,100)" -m 20 -n 100 -seed 7 > instance.txt
//	instgen -variant rw -m 4 -n 16 -seed 3 > restricted.txt
//
// -variant decorates the instance with optional model features: any
// combination of r (per-job release times), s (machine-dependent setup
// times) and w (per-machine availability windows). The decorated sections
// are emitted as the text format's optional section lines; plain instances
// are written exactly as before.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/workload"
	"repro/pcmax"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "instgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("instgen", flag.ContinueOnError)
	var (
		family = fs.String("family", "U(1,100)", `distribution family: "U(1,2m-1)", "U(1,100)", "U(1,10)", "U(1,10n)", "U(m,2m-1)", "U(95,105)"`)
		m      = fs.Int("m", 10, "number of machines")
		n      = fs.Int("n", 50, "number of jobs (ignored with -lpt-adversarial)")
		seed   = fs.Uint64("seed", 1, "RNG seed")
		adv    = fs.Bool("lpt-adversarial", false, "emit the deterministic LPT worst-case instance for m machines (n=2m+1)")

		variant  = fs.String("variant", "plain", `instance variant: "plain" or a combination of r (releases), s (setups), w (windows), e.g. "rs" or "w"`)
		relSprd  = fs.Float64("release-spread", 0, "release-time range as a fraction of the balanced load sum(t)/m (0 = default 0.5)")
		setupMax = fs.Int64("setup-max", 0, "maximum per-machine setup time (0 = a tenth of the family's upper bound)")
		windows  = fs.Int("windows", 0, "availability windows per machine (0 = default 2)")
		duty     = fs.Float64("window-duty", 0, "fraction of the horizon each machine is available, in (0,1] (0 = default 0.75)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: instgen [flags] > instance.txt")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	v, err := pcmax.ParseVariant(*variant)
	if err != nil {
		return err
	}

	var in *pcmax.Instance
	if *adv {
		if v != pcmax.Plain {
			return fmt.Errorf("-lpt-adversarial emits a plain instance; drop -variant %s", v.Letters())
		}
		in, err = workload.AdversarialLPT(*m)
	} else {
		var fam workload.Family
		fam, err = workload.ParseFamily(*family)
		if err != nil {
			return err
		}
		in, err = workload.GenerateVariant(workload.VariantSpec{
			Spec:          workload.Spec{Family: fam, M: *m, N: *n, Seed: *seed},
			Variant:       v,
			ReleaseSpread: *relSprd,
			SetupMax:      *setupMax,
			WindowCount:   *windows,
			WindowDuty:    *duty,
		})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# P||Cmax instance: family=%s m=%d n=%d seed=%d variant=%s\n",
		*family, in.M, in.N(), *seed, in.Variant().Letters())
	return pcmax.WriteText(stdout, in)
}
