package main

import (
	"strings"
	"testing"

	"repro/pcmax"
)

func TestGenerateDefault(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	in, err := pcmax.ReadText(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("output not parseable: %v\n%s", err, out.String())
	}
	if in.M != 10 || in.N() != 50 {
		t.Fatalf("got m=%d n=%d", in.M, in.N())
	}
}

func TestGenerateFamilyAndDims(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-family", "U(1,10)", "-m", "4", "-n", "20", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	in, err := pcmax.ReadText(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if in.M != 4 || in.N() != 20 {
		t.Fatalf("got m=%d n=%d", in.M, in.N())
	}
	for _, tt := range in.Times {
		if tt < 1 || tt > 10 {
			t.Fatalf("time %d outside U(1,10)", tt)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed, different output")
	}
}

func TestGenerateAdversarial(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-lpt-adversarial", "-m", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	in, err := pcmax.ReadText(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if in.M != 5 || in.N() != 11 {
		t.Fatalf("adversarial: m=%d n=%d, want 5/11", in.M, in.N())
	}
}

func TestGenerateUnknownFamily(t *testing.T) {
	if err := run([]string{"-family", "U(2,4)"}, &strings.Builder{}); err == nil {
		t.Fatal("want error for unknown family")
	}
}

func TestGenerateExtraArgs(t *testing.T) {
	if err := run([]string{"positional"}, &strings.Builder{}); err == nil {
		t.Fatal("want error for positional args")
	}
}
