package main

import (
	"strings"
	"testing"

	"repro/pcmax"
)

func genVariant(t *testing.T, args ...string) (*pcmax.Instance, string) {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	in, err := pcmax.ReadText(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("output not parseable: %v\n%s", err, out.String())
	}
	return in, out.String()
}

func TestGenerateVariantRoundTrip(t *testing.T) {
	cases := []struct {
		letters string
		want    pcmax.Variant
	}{
		{"r", pcmax.ReleaseTimes},
		{"s", pcmax.SetupTimes},
		{"w", pcmax.TimeRestricted},
		{"rsw", pcmax.AllVariants},
	}
	for _, tc := range cases {
		in, text := genVariant(t, "-variant", tc.letters, "-m", "3", "-n", "12", "-seed", "4")
		if in.Variant() != tc.want {
			t.Fatalf("-variant %s: parsed variant %v, want %v", tc.letters, in.Variant(), tc.want)
		}
		if !strings.Contains(text, "variant="+tc.letters) {
			t.Fatalf("-variant %s: header missing variant tag:\n%s", tc.letters, text)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("-variant %s: %v", tc.letters, err)
		}
	}
}

func TestGenerateVariantDeterministic(t *testing.T) {
	var a, b strings.Builder
	args := []string{"-variant", "rsw", "-m", "3", "-n", "10", "-seed", "6"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same variant spec, different output")
	}
}

func TestGenerateVariantFlags(t *testing.T) {
	in, _ := genVariant(t, "-variant", "sw", "-m", "2", "-n", "8", "-seed", "1",
		"-setup-max", "3", "-windows", "3", "-window-duty", "0.5")
	for i, s := range in.Setup {
		if s < 0 || s > 3 {
			t.Fatalf("setup[%d] = %d outside [0,3]", i, s)
		}
	}
	for i, ws := range in.Windows {
		if len(ws) != 3 {
			t.Fatalf("machine %d has %d windows, want 3", i, len(ws))
		}
	}
}

func TestGenerateVariantBadInputs(t *testing.T) {
	cases := [][]string{
		{"-variant", "q"},
		{"-variant", "r", "-lpt-adversarial"},
		{"-variant", "w", "-window-duty", "2"},
	}
	for _, args := range cases {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("accepted %v", args)
		}
	}
}
