package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/solver"
)

// TestGuaranteeAcrossFamiliesAndEpsilons is the repository's capstone
// property: on every paper instance family and a grid of epsilons, the
// public PTAS keeps its (1+eps) guarantee against certified optima, and the
// algorithm ordering opt <= PTAS, LPT, LS holds.
func TestGuaranteeAcrossFamiliesAndEpsilons(t *testing.T) {
	if testing.Short() {
		t.Skip("capstone sweep is not short")
	}
	for _, fam := range workload.Families {
		fam := fam
		t.Run(fam.String(), func(t *testing.T) {
			m, n := 6, 30
			if fam == workload.Um_2m1 {
				n = 2*m + 1
			}
			for rep := 0; rep < 3; rep++ {
				in := workload.MustGenerate(workload.Spec{Family: fam, M: m, N: n, Seed: 555 + uint64(rep)})
				_, res, err := solver.Exact(context.Background(), in, solver.ExactOptions{TimeLimit: 20 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Optimal {
					t.Skipf("optimum not certified on rep %d", rep)
				}
				opt := float64(res.Makespan)
				for _, eps := range []float64{0.2, 0.3, 0.5, 1.0} {
					opts := solver.DefaultPTASOptions()
					opts.Epsilon = eps
					opts.Workers = 2
					sched, _, err := solver.PTAS(context.Background(), in, opts)
					if err != nil {
						t.Fatalf("eps=%v rep=%d: %v", eps, rep, err)
					}
					if got := float64(sched.Makespan(in)); got > (1+eps)*opt+1e-9 {
						t.Fatalf("eps=%v rep=%d: makespan %v > (1+eps)*opt (%v)", eps, rep, got, opt)
					}
					if float64(sched.Makespan(in)) < opt {
						t.Fatalf("eps=%v rep=%d: beat the certified optimum", eps, rep)
					}
				}
			}
		})
	}
}
