// Epsilon tradeoff: sweep the PTAS accuracy knob and watch the
// quality/effort exchange. Smaller epsilon means a finer rounding grid
// (k = ceil(1/eps) size classes grow quadratically), larger DP tables, more
// machine configurations — and a makespan closer to optimal.
//
// This is the experiment to run before picking epsilon for a production
// deployment of the scheme.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/workload"
	"repro/solver"
)

func main() {
	// A paper-style instance: 20 machines, 100 jobs, medium uniform range.
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 20, N: 100, Seed: 7})
	fmt.Println(in)

	_, res, err := solver.Exact(context.Background(), in, solver.ExactOptions{TimeLimit: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal makespan: %d (proved: %v)\n\n", res.Makespan, res.Optimal)

	fmt.Printf("%-8s %-4s %-10s %-9s %-9s %-12s %-10s\n",
		"epsilon", "k", "makespan", "ratio", "iters", "table", "time")
	// The sweep stops at 0.2: the next step (k=7, so k^2=49 size classes)
	// already needs minutes on this instance — the PTAS's exponential
	// dependence on 1/eps is very real.
	for _, eps := range []float64{1.0, 0.5, 0.4, 0.3, 0.25, 0.2} {
		opts := solver.DefaultPTASOptions()
		opts.Epsilon = eps
		opts.Workers = 0
		start := time.Now()
		sched, st, err := solver.PTAS(context.Background(), in, opts)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		ms := sched.Makespan(in)
		fmt.Printf("%-8.2f %-4d %-10d %-9.4f %-9d %-12d %-10s\n",
			eps, st.K, ms, sched.Ratio(in, res.Makespan), st.Iterations,
			st.TableEntries, elapsed.Round(10*time.Microsecond))
	}

	lpt, err := solver.LPT(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLPT baseline: makespan %d, ratio %.4f\n",
		lpt.Makespan(in), lpt.Ratio(in, res.Makespan))
	fmt.Println("\nNote: the guarantee is (1+eps) but the measured ratio is usually far")
	fmt.Println("better, exactly as the paper's Section V.B reports.")
}
