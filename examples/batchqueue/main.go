// Batchqueue: split a CI test suite into shards and assign the shards to a
// fixed pool of identical runners so the slowest runner — and therefore the
// whole pipeline — finishes as early as possible.
//
// Shard durations come from the previous run's timing report. Small queues
// are solved exactly; big queues fall back to the parallel PTAS, with the
// lower bound certifying how close the answer is.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/pcmax"
	"repro/solver"
)

// shard is one test shard with its measured duration from the last run.
type shard struct {
	name string
	secs pcmax.Time
}

func main() {
	shards := []shard{
		{"ui-e2e", 840}, {"api-integration", 612}, {"unit-core", 155},
		{"unit-storage", 132}, {"migrations", 420}, {"load-smoke", 380},
		{"lint+vet", 95}, {"unit-frontend", 260}, {"screenshot-diff", 540},
		{"api-fuzz", 710}, {"unit-auth", 88}, {"packaging", 175},
		{"docs-build", 64}, {"perf-micro", 330}, {"chaos-restart", 505},
		{"unit-billing", 148},
	}
	const runners = 4

	times := make([]pcmax.Time, len(shards))
	for i, s := range shards {
		times[i] = s.secs
	}
	in, err := pcmax.NewInstance(runners, times)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CI queue: %d shards, %d runners, %ds of sequential work, floor %ds\n\n",
		in.N(), in.M, in.TotalTime(), in.LowerBound())

	var sched *pcmax.Schedule
	if in.N() <= 40 {
		// Small queue: prove the optimum.
		var res solver.ExactResult
		sched, res, err = solver.Exact(context.Background(), in, solver.ExactOptions{TimeLimit: 5 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exact assignment (optimal: %v, %d search nodes)\n", res.Optimal, res.Nodes)
	} else {
		// Big queue: the parallel PTAS with a 10%% guarantee.
		opts := solver.DefaultPTASOptions()
		opts.Epsilon = 0.1
		opts.Workers = 0
		sched, _, err = solver.PTAS(context.Background(), in, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("parallel PTAS assignment (guarantee: within 10% of optimal)")
	}

	perRunner := sched.MachineJobs()
	loads := sched.Loads(in)
	for r := 0; r < runners; r++ {
		fmt.Printf("\nrunner %d (busy %ds):\n", r, loads[r])
		for _, j := range perRunner[r] {
			fmt.Printf("  %-16s %4ds\n", shards[j].name, shards[j].secs)
		}
	}
	fmt.Printf("\npipeline finishes after %ds (sequential would be %ds — %.1fx faster)\n",
		sched.Makespan(in), in.TotalTime(),
		float64(in.TotalTime())/float64(sched.Makespan(in)))
}
