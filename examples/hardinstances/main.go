// Hardinstances: when is a (1+eps) guarantee worth more than an exact
// answer? This example builds "triplet" instances — 3-partition-shaped
// workloads where a perfect schedule exists but exact solvers must
// essentially solve 3-PARTITION to find it — and watches the IP-style
// branch-and-bound blow up with m while the parallel PTAS stays flat and
// still lands within a few percent of the (known) optimum.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/workload"
	"repro/solver"
)

func main() {
	const b = 400 // every machine's perfect load
	fmt.Println("triplet instances: n = 3m jobs, perfect makespan B =", b)
	fmt.Printf("\n%-4s %-6s %-14s %-14s %-16s %-10s\n",
		"m", "n", "IP-style B&B", "exact (bin)", "parallel PTAS", "PTAS ratio")

	for _, m := range []int{4, 6, 8, 10} {
		in, err := workload.Triplets(m, b, 7)
		if err != nil {
			log.Fatal(err)
		}

		// The IP-shaped solver (what a MIP does to this model): time-boxed,
		// may fail to prove optimality.
		start := time.Now()
		_, ipRes, err := solver.ExactIP(context.Background(), in, solver.ExactOptions{
			NodeLimit: 5_000_000, TimeLimit: 10 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		ipTime := time.Since(start)
		ipNote := ""
		if !ipRes.Optimal {
			ipNote = "*"
		}

		// The strong exact solver with parallel probes.
		start = time.Now()
		_, exRes, err := solver.Exact(context.Background(), in, solver.ExactOptions{Workers: 4, TimeLimit: 10 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		exTime := time.Since(start)

		// The parallel PTAS at the paper's eps. (Tightening eps is expensive
		// here: every triplet job is "long", so k^2 grows straight into the
		// DP's dimensionality.)
		opts := solver.DefaultPTASOptions()
		opts.Workers = 0
		start = time.Now()
		sched, _, err := solver.PTAS(context.Background(), in, opts)
		if err != nil {
			log.Fatal(err)
		}
		ptasTime := time.Since(start)

		opt := exRes.Makespan
		if !exRes.Optimal {
			opt = b // the construction guarantees a perfect partition
		}
		fmt.Printf("%-4d %-6d %-14s %-14s %-16s %-10.4f\n",
			m, in.N(),
			ipTime.Round(time.Microsecond).String()+ipNote,
			exTime.Round(time.Microsecond).String(),
			ptasTime.Round(time.Microsecond).String(),
			sched.Ratio(in, opt))
	}
	fmt.Println("\n* = optimality not proved within the limits")

	fmt.Println("\nThe PTAS never branches: its cost depends on eps and the size mix,")
	fmt.Println("not on whether a perfect partition exists. That is the regime the")
	fmt.Println("paper's parallel algorithm is built for.")
}
