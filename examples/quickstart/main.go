// Quickstart: build a P||Cmax instance, solve it with the parallel PTAS and
// the classical baselines, and print the schedules.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pcmax"
	"repro/solver"
)

func main() {
	// Eight jobs with known processing times on three identical machines.
	in, err := pcmax.NewInstance(3, []pcmax.Time{27, 19, 18, 12, 11, 9, 4, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(in)
	fmt.Printf("lower bound on the optimal makespan: %d\n\n", in.LowerBound())

	// The parallel PTAS: (1+eps)-approximation, DP parallelized over all
	// cores (Workers: 0 selects GOMAXPROCS).
	opts := solver.DefaultPTASOptions()
	opts.Epsilon = 0.2
	opts.Workers = 0
	sched, st, err := solver.PTAS(context.Background(), in, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel PTAS (eps=%.1f, k=%d): makespan %d after %d bisection iterations (final T=%d)\n",
		opts.Epsilon, st.K, sched.Makespan(in), st.Iterations, st.FinalT)
	fmt.Print(sched.Gantt(in))

	// Classical baselines for comparison.
	lpt, err := solver.LPT(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	ls, err := solver.LS(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLPT makespan: %d\nLS  makespan: %d\n", lpt.Makespan(in), ls.Makespan(in))

	// And the certified optimum.
	_, res, err := solver.Exact(context.Background(), in, solver.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal makespan: %d (proved: %v)\n", res.Makespan, res.Optimal)
	fmt.Printf("PTAS actual ratio: %.4f (guarantee: %.1f)\n",
		sched.Ratio(in, res.Makespan), 1+opts.Epsilon)
}
