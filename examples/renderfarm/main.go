// Renderfarm: schedule a night's batch of animation frames on a render
// farm. Frame render costs are heavy-tailed (a few hero shots dominate), the
// farm has a fixed number of identical nodes, and the question is whether
// the batch finishes before the morning review — the makespan question the
// paper's introduction motivates.
//
// The example compares LPT (the farm's default greedy dispatcher) with the
// parallel PTAS and shows the PTAS closing most of the gap to the optimum.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/rng"
	"repro/pcmax"
	"repro/solver"
)

const (
	nodes      = 12   // render nodes
	frames     = 160  // frames in tonight's batch
	deadline   = 4430 // seconds until the morning review
	heroFrames = 6    // frames with simulation-heavy effects
)

func main() {
	// Synthesize the batch: most frames take 100..400s; hero frames take
	// 1800..2600s (fluid sims). Seeded, so the example is reproducible.
	src := rng.New(99)
	times := make([]pcmax.Time, 0, frames)
	for f := 0; f < frames-heroFrames; f++ {
		times = append(times, pcmax.Time(src.MustUniform(100, 400)))
	}
	for f := 0; f < heroFrames; f++ {
		times = append(times, pcmax.Time(src.MustUniform(1800, 2600)))
	}
	in, err := pcmax.NewInstance(nodes, times)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("render batch: %d frames, %d nodes, %ds of total work\n", in.N(), in.M, in.TotalTime())
	fmt.Printf("theoretical floor (work/nodes vs longest frame): %ds\n\n", in.LowerBound())

	report := func(name string, sched *pcmax.Schedule) {
		ms := sched.Makespan(in)
		verdict := "MISSES the morning review"
		if ms <= deadline {
			verdict = "finishes before the morning review"
		}
		fmt.Printf("%-14s makespan %5ds — %s (deadline %ds)\n", name, ms, verdict, deadline)
	}

	lpt, err := solver.LPT(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	report("LPT dispatch", lpt)

	opts := solver.DefaultPTASOptions()
	opts.Epsilon = 0.1 // tight schedule: spend more planning time
	opts.Workers = 0   // all cores
	ptas, st, err := solver.PTAS(context.Background(), in, opts)
	if err != nil {
		log.Fatal(err)
	}
	report("parallel PTAS", ptas)
	fmt.Printf("\nPTAS planning detail: k=%d, %d bisection iterations, final target %ds, DP table %d entries\n",
		st.K, st.Iterations, st.FinalT, st.TableEntries)

	// How much slack does the best schedule leave per node?
	loads := ptas.Loads(in)
	ms := ptas.Makespan(in)
	var idle pcmax.Time
	for _, l := range loads {
		idle += ms - l
	}
	fmt.Printf("node idle time under the PTAS schedule: %ds total across %d nodes\n", idle, in.M)
}
