// Package repro is a Go reproduction of "A Parallel Approximation Algorithm
// for Scheduling Parallel Identical Machines" (Ghalami and Grosu, 2017): the
// Hochbaum–Shmoys PTAS for P||Cmax with its dynamic program parallelized
// over the anti-diagonals of the DP table for shared-memory machines.
//
// The public API lives in packages pcmax (problem model) and solver
// (algorithms). The root package holds the benchmark harness that
// regenerates every table and figure of the paper's evaluation; see
// bench_test.go, DESIGN.md and EXPERIMENTS.md.
package repro
