package solver_test

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/trsched"
	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

func TestCapabilities(t *testing.T) {
	cases := []struct {
		name string
		want pcmax.Variant
	}{
		{"ls", pcmax.AllVariants},
		{"lpt", pcmax.AllVariants},
		{"brute", pcmax.AllVariants},
		{"ptas-tr", trsched.Capabilities},
		{"ptas", pcmax.Plain},
		{"ptas-sparse", pcmax.Plain},
		{"exact", pcmax.Plain},
	}
	for _, tc := range cases {
		got, err := solver.Capabilities(tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("Capabilities(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
	if _, err := solver.Capabilities("no-such-algo"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSolveRejectsUnsupportedVariant(t *testing.T) {
	in := workload.MustGenerateVariant(workload.VariantSpec{
		Spec:    workload.Spec{Family: workload.U1_10, M: 2, N: 6, Seed: 1},
		Variant: pcmax.ReleaseTimes,
	})
	_, _, err := solver.Solve(context.Background(), "ptas", in, solver.Options{PTAS: solver.PTASOptions{Epsilon: 0.5}})
	if !errors.Is(err, solver.ErrUnsupportedVariant) {
		t.Fatalf("want ErrUnsupportedVariant, got %v", err)
	}
	var verr *solver.VariantError
	if !errors.As(err, &verr) {
		t.Fatalf("error is not a *VariantError: %v", err)
	}
	if verr.Algorithm != "ptas" || verr.Variant != pcmax.ReleaseTimes || verr.Supported != pcmax.Plain {
		t.Fatalf("VariantError fields wrong: %+v", verr)
	}

	// The check also guards direct registry use, not just solver.Solve.
	algo, err := solver.Lookup("ptas")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := algo.Solve(context.Background(), in, solver.Options{PTAS: solver.PTASOptions{Epsilon: 0.5}}); !errors.Is(err, solver.ErrUnsupportedVariant) {
		t.Fatalf("direct Lookup().Solve bypassed the variant check: %v", err)
	}
}

func TestSolveDispatchesCapableAlgorithms(t *testing.T) {
	in := workload.MustGenerateVariant(workload.VariantSpec{
		Spec:    workload.Spec{Family: workload.U1_10, M: 2, N: 8, Seed: 2},
		Variant: pcmax.SetupTimes | pcmax.TimeRestricted,
	})
	for _, name := range []string{"ls", "lpt", "ptas-tr", "brute"} {
		sched, rep, err := solver.Solve(context.Background(), name, in, solver.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sched.Feasible(in); err != nil {
			t.Fatalf("%s: infeasible: %v", name, err)
		}
		switch name {
		case "ptas-tr":
			if rep.TR == nil {
				t.Fatal("ptas-tr returned no TR stats")
			}
		case "brute":
			if rep.Exact == nil || !rep.Exact.Optimal {
				t.Fatalf("brute returned no certified exact result: %+v", rep.Exact)
			}
		}
	}
}

func TestCapableNames(t *testing.T) {
	names := solver.CapableNames(pcmax.ReleaseTimes)
	want := []string{"brute", "lpt", "ls"}
	if len(names) != len(want) {
		t.Fatalf("CapableNames(release) = %v, want %v", names, want)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("CapableNames not sorted: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("CapableNames(release) = %v, want %v", names, want)
		}
	}
	if plain := solver.CapableNames(pcmax.Plain); len(plain) < 8 {
		t.Fatalf("CapableNames(plain) lists only %v", plain)
	}
}

func TestDefaultAlgorithm(t *testing.T) {
	cases := []struct {
		v    pcmax.Variant
		want string
	}{
		{pcmax.Plain, "ptas"},
		{pcmax.SetupTimes, "ptas-tr"},
		{pcmax.TimeRestricted, "ptas-tr"},
		{pcmax.SetupTimes | pcmax.TimeRestricted, "ptas-tr"},
		{pcmax.ReleaseTimes, "lpt"},
		{pcmax.AllVariants, "lpt"},
	}
	for _, tc := range cases {
		if got := solver.DefaultAlgorithm(tc.v); got != tc.want {
			t.Errorf("DefaultAlgorithm(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
