package solver

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cancel"
	"repro/pcmax"
)

// Options aggregates the per-algorithm option structs for registry dispatch.
// Only the struct matching the selected algorithm is consulted; the zero
// value is usable for every algorithm (PTAS falls back to
// DefaultPTASOptions when Options.PTAS.Epsilon is unset).
type Options struct {
	PTAS  PTASOptions
	Exact ExactOptions
	Sahni SahniOptions
	TR    TROptions
}

// Report is the uniform outcome record every registered algorithm returns:
// which algorithm ran, what makespan it achieved and how long it took, plus
// the algorithm-specific detail when there is one.
type Report struct {
	// Algorithm is the registry name of the algorithm that produced the
	// schedule.
	Algorithm string
	// Makespan of the returned schedule; 0 when no schedule was produced.
	Makespan pcmax.Time
	// Elapsed is the wall-clock duration of the Solve call.
	Elapsed time.Duration
	// Interrupted reports that the context died before the algorithm
	// finished. The schedule (when non-nil) is the best fallback/incumbent,
	// without the algorithm's usual guarantee.
	Interrupted bool

	// PTAS carries the PTAS run statistics ("ptas" only).
	PTAS *PTASStats
	// Exact carries the branch-and-bound outcome ("exact", "ip" and "brute"
	// only).
	Exact *ExactResult
	// TR carries the time-restricted bisection statistics ("ptas-tr" only).
	TR *TRStats
}

// Algorithm is the uniform interface every scheduling algorithm in the
// repository implements for named dispatch. Solve must honor ctx
// cooperatively and report interruptions through the returned error
// (matching ErrCanceled) and Report.Interrupted.
type Algorithm interface {
	Name() string
	Solve(ctx context.Context, in *pcmax.Instance, opts Options) (*pcmax.Schedule, Report, error)
}

// Registry maps algorithm names to implementations. All ten algorithms are
// registered at init: "ls", "lpt", "multifit", "ptas", "ptas-sparse",
// "exact", "ip", "sahni", "ptas-tr" and "brute". Callers may add their own
// algorithms under fresh names; an algorithm that also implements
// VariantCapable declares support for instance-model features beyond plain
// P||Cmax (see variants.go), and the Solve helper enforces those capability
// sets on dispatch.
var Registry = map[string]Algorithm{}

// Register adds an algorithm to Registry; it panics on a duplicate name,
// which is a programming error.
func Register(a Algorithm) {
	if _, dup := Registry[a.Name()]; dup {
		panic(fmt.Sprintf("solver: duplicate algorithm %q", a.Name()))
	}
	Registry[a.Name()] = a
}

// Lookup resolves an algorithm by name, with an error that lists the
// registered names on a miss.
func Lookup(name string) (Algorithm, error) {
	a, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("solver: unknown algorithm %q (have %v)", name, Names())
	}
	return a, nil
}

// Names returns the registered algorithm names, sorted.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// algo adapts a plain solve function to the Algorithm interface, stamping
// the uniform Report fields (name, makespan, elapsed, interruption) and
// enforcing the declared variant capability set.
type algo struct {
	name string
	caps pcmax.Variant
	fn   func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error)
}

func (a algo) Name() string { return a.name }

// Capabilities implements VariantCapable.
func (a algo) Capabilities() pcmax.Variant { return a.caps }

func (a algo) Solve(ctx context.Context, in *pcmax.Instance, opts Options) (*pcmax.Schedule, Report, error) {
	rep := Report{Algorithm: a.name}
	if err := checkVariant(a, in); err != nil {
		return nil, rep, err
	}
	t0 := time.Now()
	sched, err := a.fn(ctx, in, opts, &rep)
	rep.Elapsed = time.Since(t0)
	if err != nil && cancel.Check(ctx) != nil {
		rep.Interrupted = true
	}
	if sched != nil {
		rep.Makespan = sched.Makespan(in)
	}
	return sched, rep, err
}

// ptasOptions resolves the effective PTAS options for registry dispatch: a
// zero Epsilon selects the library defaults so the zero Options value works.
func ptasOptions(opts Options) PTASOptions {
	p := opts.PTAS
	if p.Epsilon == 0 {
		def := DefaultPTASOptions()
		def.Workers = p.Workers
		def.TimeLimit = p.TimeLimit
		p = def
	}
	return p
}

// exactInterruption surfaces a context interruption of the exact solvers as
// a structured error: the solvers themselves keep their MIP-style contract
// (incumbent, Optimal == false, nil error), so the registry — whose callers
// select algorithms uniformly and need a uniform interruption signal —
// re-derives the error from ctx when the proof did not finish.
func exactInterruption(ctx context.Context, res ExactResult) error {
	if res.Optimal {
		return nil
	}
	if err := cancel.Check(ctx); err != nil {
		return err
	}
	return nil
}

func init() {
	Register(algo{name: "ls", caps: pcmax.AllVariants,
		fn: func(ctx context.Context, in *pcmax.Instance, _ Options, _ *Report) (*pcmax.Schedule, error) {
			return LS(ctx, in)
		}})
	Register(algo{name: "lpt", caps: pcmax.AllVariants,
		fn: func(ctx context.Context, in *pcmax.Instance, _ Options, _ *Report) (*pcmax.Schedule, error) {
			return LPT(ctx, in)
		}})
	Register(algo{name: "multifit",
		fn: func(ctx context.Context, in *pcmax.Instance, _ Options, _ *Report) (*pcmax.Schedule, error) {
			return MultiFit(ctx, in)
		}})
	Register(algo{name: "ptas",
		fn: func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error) {
			sched, st, err := PTAS(ctx, in, ptasOptions(opts))
			rep.PTAS = st
			return sched, err
		}})
	Register(algo{name: "ptas-sparse",
		fn: func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error) {
			popts := ptasOptions(opts)
			popts.Sparsify = true
			sched, st, err := PTAS(ctx, in, popts)
			rep.PTAS = st
			return sched, err
		}})
	Register(algo{name: "exact",
		fn: func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error) {
			sched, res, err := Exact(ctx, in, opts.Exact)
			if err != nil {
				return nil, err
			}
			rep.Exact = &res
			return sched, exactInterruption(ctx, res)
		}})
	Register(algo{name: "ip",
		fn: func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error) {
			sched, res, err := ExactIP(ctx, in, opts.Exact)
			if err != nil {
				return nil, err
			}
			rep.Exact = &res
			return sched, exactInterruption(ctx, res)
		}})
	Register(algo{name: "sahni",
		fn: func(ctx context.Context, in *pcmax.Instance, opts Options, _ *Report) (*pcmax.Schedule, error) {
			return Sahni(ctx, in, opts.Sahni)
		}})
}
