package solver

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cancel"
	"repro/pcmax"
)

// Options aggregates the per-algorithm option structs for registry dispatch.
// Only the struct matching the selected algorithm is consulted; the zero
// value is usable for every algorithm (PTAS falls back to
// DefaultPTASOptions when Options.PTAS.Epsilon is unset).
type Options struct {
	PTAS  PTASOptions
	Exact ExactOptions
	Sahni SahniOptions
}

// Report is the uniform outcome record every registered algorithm returns:
// which algorithm ran, what makespan it achieved and how long it took, plus
// the algorithm-specific detail when there is one.
type Report struct {
	// Algorithm is the registry name of the algorithm that produced the
	// schedule.
	Algorithm string
	// Makespan of the returned schedule; 0 when no schedule was produced.
	Makespan pcmax.Time
	// Elapsed is the wall-clock duration of the Solve call.
	Elapsed time.Duration
	// Interrupted reports that the context died before the algorithm
	// finished. The schedule (when non-nil) is the best fallback/incumbent,
	// without the algorithm's usual guarantee.
	Interrupted bool

	// PTAS carries the PTAS run statistics ("ptas" only).
	PTAS *PTASStats
	// Exact carries the branch-and-bound outcome ("exact" and "ip" only).
	Exact *ExactResult
}

// Algorithm is the uniform interface every scheduling algorithm in the
// repository implements for named dispatch. Solve must honor ctx
// cooperatively and report interruptions through the returned error
// (matching ErrCanceled) and Report.Interrupted.
type Algorithm interface {
	Name() string
	Solve(ctx context.Context, in *pcmax.Instance, opts Options) (*pcmax.Schedule, Report, error)
}

// Registry maps algorithm names to implementations. All eight algorithms
// are registered at init: "ls", "lpt", "multifit", "ptas", "ptas-sparse",
// "exact", "ip" and "sahni". Callers may add their own algorithms under
// fresh names.
var Registry = map[string]Algorithm{}

// Register adds an algorithm to Registry; it panics on a duplicate name,
// which is a programming error.
func Register(a Algorithm) {
	if _, dup := Registry[a.Name()]; dup {
		panic(fmt.Sprintf("solver: duplicate algorithm %q", a.Name()))
	}
	Registry[a.Name()] = a
}

// Lookup resolves an algorithm by name, with an error that lists the
// registered names on a miss.
func Lookup(name string) (Algorithm, error) {
	a, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("solver: unknown algorithm %q (have %v)", name, Names())
	}
	return a, nil
}

// Names returns the registered algorithm names, sorted.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// algo adapts a plain solve function to the Algorithm interface, stamping
// the uniform Report fields (name, makespan, elapsed, interruption).
type algo struct {
	name string
	fn   func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error)
}

func (a algo) Name() string { return a.name }

func (a algo) Solve(ctx context.Context, in *pcmax.Instance, opts Options) (*pcmax.Schedule, Report, error) {
	rep := Report{Algorithm: a.name}
	t0 := time.Now()
	sched, err := a.fn(ctx, in, opts, &rep)
	rep.Elapsed = time.Since(t0)
	if err != nil && cancel.Check(ctx) != nil {
		rep.Interrupted = true
	}
	if sched != nil {
		rep.Makespan = sched.Makespan(in)
	}
	return sched, rep, err
}

// ptasOptions resolves the effective PTAS options for registry dispatch: a
// zero Epsilon selects the library defaults so the zero Options value works.
func ptasOptions(opts Options) PTASOptions {
	p := opts.PTAS
	if p.Epsilon == 0 {
		def := DefaultPTASOptions()
		def.Workers = p.Workers
		def.TimeLimit = p.TimeLimit
		p = def
	}
	return p
}

// exactInterruption surfaces a context interruption of the exact solvers as
// a structured error: the solvers themselves keep their MIP-style contract
// (incumbent, Optimal == false, nil error), so the registry — whose callers
// select algorithms uniformly and need a uniform interruption signal —
// re-derives the error from ctx when the proof did not finish.
func exactInterruption(ctx context.Context, res ExactResult) error {
	if res.Optimal {
		return nil
	}
	if err := cancel.Check(ctx); err != nil {
		return err
	}
	return nil
}

func init() {
	Register(algo{"ls", func(ctx context.Context, in *pcmax.Instance, _ Options, _ *Report) (*pcmax.Schedule, error) {
		return LS(ctx, in)
	}})
	Register(algo{"lpt", func(ctx context.Context, in *pcmax.Instance, _ Options, _ *Report) (*pcmax.Schedule, error) {
		return LPT(ctx, in)
	}})
	Register(algo{"multifit", func(ctx context.Context, in *pcmax.Instance, _ Options, _ *Report) (*pcmax.Schedule, error) {
		return MultiFit(ctx, in)
	}})
	Register(algo{"ptas", func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error) {
		sched, st, err := PTAS(ctx, in, ptasOptions(opts))
		rep.PTAS = st
		return sched, err
	}})
	Register(algo{"ptas-sparse", func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error) {
		popts := ptasOptions(opts)
		popts.Sparsify = true
		sched, st, err := PTAS(ctx, in, popts)
		rep.PTAS = st
		return sched, err
	}})
	Register(algo{"exact", func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error) {
		sched, res, err := Exact(ctx, in, opts.Exact)
		if err != nil {
			return nil, err
		}
		rep.Exact = &res
		return sched, exactInterruption(ctx, res)
	}})
	Register(algo{"ip", func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error) {
		sched, res, err := ExactIP(ctx, in, opts.Exact)
		if err != nil {
			return nil, err
		}
		rep.Exact = &res
		return sched, exactInterruption(ctx, res)
	}})
	Register(algo{"sahni", func(ctx context.Context, in *pcmax.Instance, opts Options, _ *Report) (*pcmax.Schedule, error) {
		return Sahni(ctx, in, opts.Sahni)
	}})
}
