package solver_test

import (
	"context"
	"testing"

	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// TestSparseGuaranteeAgainstExactOptima is the differential anchor of the
// ptas-sparse registry algorithm: across all six workload families and
// eps in {0.5, 0.2, 0.1}, the sparse schedule's makespan stays within
// (1+eps) of the certified optimum from the branch-and-bound solver.
func TestSparseGuaranteeAgainstExactOptima(t *testing.T) {
	shapes := []struct{ m, n int }{{3, 12}, {4, 16}}
	for _, eps := range []float64{0.5, 0.2, 0.1} {
		for _, fam := range workload.Families {
			for _, sh := range shapes {
				n := sh.n
				m := sh.m
				if fam == workload.Um_2m1 {
					// Sizes are U(m, 2m-1), so OPT scales with m. Small m
					// leaves OPT comparable to k at eps=0.1, where integer
					// rounding's documented additive slop (round.go) exceeds
					// the multiplicative band for faithful and sparse alike;
					// m=12 keeps OPT large enough for the strict ratio while
					// staying certifiable by branch-and-bound.
					m = 12
					n = 2*m + 1
				}
				in := workload.MustGenerate(workload.Spec{Family: fam, M: m, N: n, Seed: 11})

				exactS, res, err := solver.Exact(context.Background(), in, solver.ExactOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Optimal {
					t.Fatalf("%v m=%d n=%d: exact did not certify", fam, m, n)
				}
				opt := exactS.Makespan(in)

				sched, rep, err := mustSparse(t, in, eps)
				if err != nil {
					t.Fatalf("%v m=%d n=%d eps=%v: %v", fam, m, n, eps, err)
				}
				ms := sched.Makespan(in)
				if ms < opt {
					t.Fatalf("%v m=%d n=%d eps=%v: makespan %d below optimum %d", fam, m, n, eps, ms, opt)
				}
				if float64(ms) > (1+eps)*float64(opt)+1e-9 {
					t.Fatalf("%v m=%d n=%d eps=%v: makespan %d exceeds (1+eps)*opt = %.1f (stats %+v)",
						fam, m, n, eps, ms, (1+eps)*float64(opt), rep.PTAS)
				}
				if rep.PTAS == nil {
					t.Fatalf("%v m=%d n=%d eps=%v: registry dispatch returned no PTAS stats", fam, m, n, eps)
				}
			}
		}
	}
}

// mustSparse dispatches ptas-sparse through the registry, validating the
// returned schedule.
func mustSparse(t *testing.T, in *pcmax.Instance, eps float64) (*pcmax.Schedule, solver.Report, error) {
	t.Helper()
	a, err := solver.Lookup("ptas-sparse")
	if err != nil {
		t.Fatal(err)
	}
	opts := solver.Options{PTAS: solver.DefaultPTASOptions()}
	opts.PTAS.Epsilon = eps
	sched, rep, err := a.Solve(context.Background(), in, opts)
	if err != nil {
		return nil, rep, err
	}
	if verr := sched.Validate(in); verr != nil {
		t.Fatalf("invalid sparse schedule: %v", verr)
	}
	return sched, rep, nil
}

// TestSparseNeverWorseThanFaithfulGuarantee runs a 50-instance differential
// suite: on every instance the sparse pipeline's makespan stays within
// (1+eps) of the faithful PTAS's makespan. (When the sparse run certifies its
// target — or falls back — it matches the faithful guarantee exactly; this
// suite pins the composite behavior across families, shapes and seeds.)
func TestSparseNeverWorseThanFaithfulGuarantee(t *testing.T) {
	const eps = 0.2
	count := 0
	for _, fam := range workload.Families {
		for seed := uint64(1); seed <= 9 && count < 50; seed++ {
			m := 2 + int(seed%4)
			n := 3*m + int(seed%7)
			if fam == workload.Um_2m1 {
				n = 2*m + 1
			}
			in := workload.MustGenerate(workload.Spec{Family: fam, M: m, N: n, Seed: seed})
			count++

			fopts := solver.DefaultPTASOptions()
			fopts.Epsilon = eps
			fsched, _, err := solver.PTAS(context.Background(), in, fopts)
			if err != nil {
				t.Fatal(err)
			}
			ssched, rep, err := mustSparse(t, in, eps)
			if err != nil {
				t.Fatalf("%v seed=%d: %v", fam, seed, err)
			}
			fms, sms := fsched.Makespan(in), ssched.Makespan(in)
			if float64(sms) > (1+eps)*float64(fms)+1e-9 {
				t.Fatalf("%v m=%d n=%d seed=%d: sparse %d vs faithful %d exceeds (1+eps) (stats %+v)",
					fam, m, n, seed, sms, fms, rep.PTAS)
			}
		}
	}
	if count < 50 {
		t.Fatalf("suite covered only %d instances", count)
	}
}
