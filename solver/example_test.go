package solver_test

import (
	"context"
	"fmt"

	"repro/pcmax"
	"repro/solver"
)

func ExamplePTAS() {
	in, _ := pcmax.NewInstance(2, []pcmax.Time{9, 8, 7, 6, 5, 4, 3})
	opts := solver.DefaultPTASOptions() // eps = 0.3, sequential
	sched, stats, err := solver.PTAS(context.Background(), in, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("makespan %d (k=%d, guarantee %.1fx optimal)\n",
		sched.Makespan(in), stats.K, 1+opts.Epsilon)
	// Output: makespan 21 (k=4, guarantee 1.3x optimal)
}

func ExampleLPT() {
	in, _ := pcmax.NewInstance(3, []pcmax.Time{5, 5, 4, 4, 3, 3})
	sched, err := solver.LPT(context.Background(), in)
	if err != nil {
		panic(err)
	}
	fmt.Println("makespan", sched.Makespan(in))
	// Output: makespan 8
}

func ExampleExact() {
	in, _ := pcmax.NewInstance(2, []pcmax.Time{5, 4, 3, 2})
	_, res, err := solver.Exact(context.Background(), in, solver.ExactOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal makespan %d (proved: %v)\n", res.Makespan, res.Optimal)
	// Output: optimal makespan 7 (proved: true)
}

func ExampleSahni() {
	// Exact for small m via Sahni's fixed-m dynamic program.
	in, _ := pcmax.NewInstance(3, []pcmax.Time{7, 6, 5, 4, 3, 2, 1})
	sched, err := solver.Sahni(context.Background(), in, solver.SahniOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("optimal makespan", sched.Makespan(in))
	// Output: optimal makespan 10
}
