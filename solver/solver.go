// Package solver is the public API of the library: one-call access to every
// scheduling algorithm in the repository.
//
//   - LS: Graham's list scheduling, 2-approximation.
//   - LPT: longest processing time, 4/3-approximation.
//   - MultiFit: Coffman–Garey–Johnson MF algorithm.
//   - PTAS: the Hochbaum–Shmoys (1+eps)-approximation scheme, sequential or
//     parallel (the paper's contribution) depending on Workers.
//   - Exact: optimal makespan by branch-and-bound (the paper's CPLEX "IP"
//     baseline).
//   - ExactIP: branch-and-bound over the assignment IP formulation.
//   - Sahni: fixed-m dynamic programming (exact or FPTAS-grade).
//
// All functions validate their inputs and never panic on bad instances.
//
// # Deadlines and cancellation
//
// Every entry point takes a context.Context and honors it cooperatively all
// the way down — inside DP table fills, between branch-and-bound nodes,
// between capacity probes — so an abort lands within milliseconds, not after
// the current phase. Use context.WithTimeout for request deadlines. An
// interrupted solve returns an error matching ErrCanceled (and ErrDeadline
// when a deadline caused it); PTAS additionally degrades gracefully,
// returning plain LPT's schedule next to the error so callers still get a
// valid (if unguaranteed) answer. The legacy TimeLimit option fields remain
// as thin shims over context deadlines and are deprecated in favor of ctx.
//
// The named-dispatch layer lives in registry.go: every algorithm is also
// reachable through Registry by name via the uniform Algorithm interface.
package solver

import (
	"context"
	"time"

	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/exact"
	"repro/internal/listsched"
	"repro/internal/multifit"
	"repro/internal/par"
	"repro/internal/sahni"
	"repro/pcmax"
)

// Structured cancellation sentinels, re-exported from the internal cancel
// vocabulary so callers can test errors.Is without reaching into internals.
var (
	// ErrCanceled matches every context-interrupted solve.
	ErrCanceled = cancel.ErrCanceled
	// ErrDeadline matches solves interrupted by a context deadline
	// (including legacy TimeLimit shims); it wraps ErrCanceled.
	ErrDeadline = cancel.ErrDeadline
)

// Interruption is the structured error carried by interrupted solves; use
// errors.As to recover the partial progress (bisection iterations completed,
// DP entries filled) an interrupted PTAS had made.
type Interruption = cancel.Error

// LS runs Graham's list scheduling in job input order. It accepts every
// instance variant: on non-plain instances the priority list is unchanged and
// each job goes to the machine completing it earliest under release, setup
// and window semantics (see internal/listsched). Plain instances take the
// classic code path and schedules are bit-identical to before the variant
// model existed.
func LS(ctx context.Context, in *pcmax.Instance) (*pcmax.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := cancel.Check(ctx); err != nil {
		return nil, err
	}
	return listsched.LSGeneral(in)
}

// LPT runs Graham's longest-processing-time algorithm. Like LS it accepts
// every instance variant, choosing the earliest-completion machine for each
// job of the LPT priority list; plain instances take the classic code path
// unchanged.
func LPT(ctx context.Context, in *pcmax.Instance) (*pcmax.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := cancel.Check(ctx); err != nil {
		return nil, err
	}
	return listsched.LPTGeneral(in)
}

// MultiFit runs the MF algorithm with the capacity search at full
// convergence. ctx is checked between capacity probes.
func MultiFit(ctx context.Context, in *pcmax.Instance) (*pcmax.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return multifit.Solve(ctx, in)
}

// PTASOptions configures PTAS. The zero value is invalid (Epsilon must be
// positive); start from DefaultPTASOptions.
type PTASOptions struct {
	// Epsilon is the relative error of the scheme; the schedule's makespan
	// is at most (1+Epsilon) times optimal (for coarse epsilons this relies
	// on the default LPT fallback — integer rounding otherwise leaves a
	// small additive slack; see ALGORITHM.md §2). The paper evaluates 0.3.
	Epsilon float64
	// Workers is the number of parallel DP workers. 1 runs the sequential
	// PTAS; values below 1 select GOMAXPROCS. The parallel and sequential
	// variants produce identical schedules.
	Workers int
	// ShortJobsLS switches the short-job placement from the paper's LPT
	// rule to the original Hochbaum–Shmoys LS rule.
	ShortJobsLS bool
	// PaperFaithful selects the presentation-faithful variants: the
	// recursive memoized sequential DP (paper Algorithm 2) and per-level
	// full table scans in the parallel DP (paper Algorithm 3). The default
	// uses the optimized equivalents (bottom-up sweep, level buckets).
	PaperFaithful bool
	// MaxTableEntries caps the DP table size; <= 0 uses the library default
	// (1<<25 entries). The PTAS fails with a descriptive error when an
	// instance/epsilon combination would exceed it.
	MaxTableEntries int64
	// MaxConfigs caps machine-configuration enumeration; <= 0 uses the
	// library default.
	MaxConfigs int
	// SpeculativeProbes, when > 1, parallelizes across the bisection search
	// instead of within the DP fill: that many target makespans are probed
	// concurrently per round, each with a sequential fill. An extension
	// beyond the paper; it preserves the (1+eps) guarantee. When set,
	// Workers is ignored for the fill.
	SpeculativeProbes int
	// AdaptiveFill routes parallel fills through the adaptive path: tables
	// too small to amortize any coordination run sequentially even with
	// Workers > 1, and larger tables run dp.FillAutoCtx on a persistent
	// barrier pool — narrow levels inline on the caller, runs of mid-width
	// levels fused into one dispatch, only wide levels fanned out.
	// PTASStats.Auto reports the routing. DefaultPTASOptions enables it;
	// disable (or set PaperFaithful) for paper-faithful per-level timing.
	AdaptiveFill bool
	// TimeLimit aborts the solve when exceeded.
	//
	// Deprecated: TimeLimit is a back-compat shim over context deadlines —
	// it is applied via context.WithTimeout on the caller's ctx, so the
	// abort now lands inside a running DP fill, not just between bisection
	// probes. New callers should pass a deadline on ctx instead; <= 0
	// disables. Small epsilons can take super-exponential time, so
	// production callers should bound the solve one way or the other.
	TimeLimit time.Duration
	// NoLPTFallback disables returning plain LPT's schedule when it beats
	// the PTAS construction. The fallback (on by default through
	// DefaultPTASOptions) never hurts and is what makes the stated
	// guarantee robust for coarse epsilons under integer rounding; disable
	// only for paper-faithful measurements.
	NoLPTFallback bool
	// Sparsify enables the sparsified DP pipeline (the "ptas-sparse"
	// registry algorithm): geometric grouping of the rounded size classes
	// plus a support-bounded, dominance-pruned configuration enumeration
	// shrink every bisection probe's DP. The (1+eps) guarantee is preserved
	// by construction-time verification: the driver certifies the converged
	// target against the faithful enumeration and gate-checks the measured
	// makespan, transparently re-solving faithfully when either fails
	// (PTASStats.SparseCertified, PTASStats.SparseFallback).
	Sparsify bool
}

// DefaultPTASOptions mirrors the paper's experimental configuration:
// eps = 0.3 and sequential execution.
func DefaultPTASOptions() PTASOptions {
	return PTASOptions{Epsilon: 0.3, Workers: 1, AdaptiveFill: true}
}

// PTASStats reports what one PTAS run did (bisection iterations, final
// target makespan, table dimensions, ...).
type PTASStats struct {
	K          int
	Iterations int
	LB0, UB0   pcmax.Time
	FinalT     pcmax.Time

	LongJobs, ShortJobs int
	RoundingUnit        pcmax.Time
	SizeClasses         int
	TableEntries        int64
	Configs             int
	MachinesUsed        int

	TotalEntriesFilled int64
	FillTime           time.Duration
	// Auto reports, across all bisection probes, how the adaptive fill
	// routed DP anti-diagonal levels: inline on the caller, fused into
	// batched dispatches, or fanned out as dedicated parallel rounds.
	// All-zero unless AdaptiveFill ran the barrier-pool path.
	Auto dp.AutoStats
	// UsedLPTFallback reports that plain LPT beat the PTAS construction and
	// its (never worse) schedule was returned.
	UsedLPTFallback bool
	// WarmStart reports that the solve started from a warm bracket (a
	// Session re-solve) consistent with the fresh bounds; LB0/UB0 then hold
	// the tightened interval.
	WarmStart bool
	// Cache reports DP-cache traffic for this solve alone: how often the
	// bisection reused configuration enumerations and level-bucket indexes
	// (within the solve, and across solves on a Session's shared cache).
	Cache dp.CacheStats

	// Sparse-pipeline observability (PTASOptions.Sparsify / the ptas-sparse
	// registry algorithm); all zero on faithful runs.

	// ConfigsEnumerated counts the feasible configurations the sparse
	// enumerator visited at the converged target (after grouping, before
	// pruning); ConfigsAfterSparsification counts the ones it retained.
	// Their ratio is the configuration-set reduction of the final table.
	ConfigsEnumerated          int
	ConfigsAfterSparsification int
	// SparseCertified reports that the converged target was proven <= OPT
	// (so the schedule carries the full (1+eps) guarantee); false only when
	// the faithful verification table exceeded the entry budget.
	SparseCertified bool
	// SparseFallback reports that the sparse run failed verification and
	// the result came from a transparent faithful re-solve.
	SparseFallback bool
}

// PTAS runs the (1+eps)-approximation scheme, parallel when
// opts.Workers != 1.
//
// When ctx is canceled (or its deadline — or the deprecated TimeLimit shim —
// expires) mid-solve, PTAS degrades gracefully: it returns plain LPT's
// schedule (non-nil, valid, without the (1+eps) guarantee), the partial
// stats, and an error matching ErrCanceled/ErrDeadline that carries the
// progress made (see Interruption).
func PTAS(ctx context.Context, in *pcmax.Instance, opts PTASOptions) (*pcmax.Schedule, *PTASStats, error) {
	sched, st, err := core.Solve(ctx, in, coreOptions(opts))
	var pst *PTASStats
	if st != nil {
		p := PTASStats(*st)
		pst = &p
	}
	// On cancellation core.Solve already degraded to the LPT fallback
	// schedule; pass it through next to the structured error.
	return sched, pst, err
}

// coreOptions maps the public PTAS options onto the internal driver's
// configuration. Shared by the cold path (PTAS) and the warm path
// (Session.SolveDelta), which additionally threads its persistent cache and
// warm bracket through the returned value.
func coreOptions(opts PTASOptions) core.Options {
	copts := core.Options{
		Epsilon:           opts.Epsilon,
		Workers:           opts.Workers,
		MaxTableEntries:   opts.MaxTableEntries,
		MaxConfigs:        opts.MaxConfigs,
		Strategy:          par.RoundRobin,
		SpeculativeProbes: opts.SpeculativeProbes,
		AdaptiveFill:      opts.AdaptiveFill,
		AutoFill:          opts.AdaptiveFill && !opts.PaperFaithful,
		TimeLimit:         opts.TimeLimit,
		LPTFallback:       !opts.NoLPTFallback,
		Sparsify:          opts.Sparsify,
	}
	if opts.SpeculativeProbes > 1 {
		copts.Workers = 1
	}
	if opts.ShortJobsLS {
		copts.ShortRule = core.ShortLS
	}
	if opts.PaperFaithful {
		copts.SeqFill = core.SeqRecursive
		copts.LevelMode = dp.LevelScan
		copts.PerEntryConfigs = true
	}
	return copts
}

// ExactOptions bounds the exact solver.
type ExactOptions struct {
	// NodeLimit caps search nodes; <= 0 uses the library default.
	NodeLimit int64
	// TimeLimit caps wall-clock time; <= 0 means unlimited.
	//
	// Deprecated: TimeLimit is a back-compat shim over context deadlines;
	// new callers should pass a deadline on ctx instead. Either way the
	// best incumbent is returned with Optimal == false when the clock runs
	// out.
	TimeLimit time.Duration
	// Workers > 1 parallelizes each feasibility probe by racing the
	// first-bin subtrees across that many goroutines (an extension in the
	// paper's future-work direction). The optimal makespan is unchanged;
	// only wall-clock time and the specific optimal schedule may differ.
	Workers int
}

// ExactResult reports the exact solve outcome.
type ExactResult struct {
	Makespan pcmax.Time
	// Optimal is false when a limit interrupted the optimality proof; the
	// returned schedule is then the best incumbent found.
	Optimal    bool
	Nodes      int64
	LowerBound pcmax.Time
}

// Exact computes an optimal schedule by branch-and-bound (the repository's
// substitute for the paper's CPLEX IP baseline). A context cancellation
// behaves like a MIP solver's time limit: the best incumbent is returned
// with Optimal == false and a nil error.
func Exact(ctx context.Context, in *pcmax.Instance, opts ExactOptions) (*pcmax.Schedule, ExactResult, error) {
	eopts := exact.Options{NodeLimit: opts.NodeLimit, TimeLimit: opts.TimeLimit}
	var (
		sched *pcmax.Schedule
		res   exact.Result
		err   error
	)
	if opts.Workers > 1 {
		sched, res, err = exact.SolveParallel(ctx, in, eopts, opts.Workers)
	} else {
		sched, res, err = exact.Solve(ctx, in, eopts)
	}
	if err != nil {
		return nil, ExactResult{}, err
	}
	return sched, ExactResult(res), nil
}

// ExactIP solves the instance with a branch-and-bound over the assignment
// formulation of the problem's integer program — the search a MIP solver
// performs on the paper's IP model, with only the LP-relaxation bound. It is
// the repository's stand-in for the paper's CPLEX baseline: expect running
// times that vary wildly across instance families, exactly as the paper
// reports for CPLEX. For a certified optimum use Exact, which is uniformly
// stronger. Cancellation semantics match Exact's (incumbent, Optimal ==
// false, nil error).
func ExactIP(ctx context.Context, in *pcmax.Instance, opts ExactOptions) (*pcmax.Schedule, ExactResult, error) {
	sched, res, err := exact.SolveAssignment(ctx, in, exact.Options{NodeLimit: opts.NodeLimit, TimeLimit: opts.TimeLimit})
	if err != nil {
		return nil, ExactResult{}, err
	}
	return sched, ExactResult(res), nil
}

// SahniOptions configures Sahni, the fixed-m dynamic-programming scheme
// from the paper's related work.
type SahniOptions struct {
	// Epsilon selects the approximation: 0 is exact (integer loads keep the
	// state space finite), > 0 is a (1+Epsilon)-approximation with a
	// quantized state space.
	Epsilon float64
	// MaxStates bounds the DP state set per job; <= 0 uses the library
	// default. Exceeding it returns an error: the scheme is only practical
	// for small m.
	MaxStates int
	// MaxMachines bounds m; <= 0 uses the library default (5).
	MaxMachines int
}

// Sahni schedules the instance with Sahni's fixed-m dynamic program: exact
// for Epsilon == 0, a (1+Epsilon)-approximation otherwise. Complementary to
// PTAS: use it when m is small and certified optimality (or an FPTAS-grade
// guarantee) matters more than scaling in m. ctx is checked once per job
// sweep and within large sweeps; a cancellation surfaces as an error
// matching ErrCanceled.
func Sahni(ctx context.Context, in *pcmax.Instance, opts SahniOptions) (*pcmax.Schedule, error) {
	return sahni.Solve(ctx, in, sahni.Options{
		Epsilon:     opts.Epsilon,
		MaxStates:   opts.MaxStates,
		MaxMachines: opts.MaxMachines,
	})
}
