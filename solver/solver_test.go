package solver_test

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

func sampleInstance() *pcmax.Instance {
	return workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 5, N: 30, Seed: 12})
}

func TestLSValid(t *testing.T) {
	in := sampleInstance()
	s, err := solver.LS(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestLPTValid(t *testing.T) {
	in := sampleInstance()
	s, err := solver.LPT(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestMultiFitValid(t *testing.T) {
	in := sampleInstance()
	s, err := solver.MultiFit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestAllRejectInvalidInstances(t *testing.T) {
	bad := &pcmax.Instance{M: 0, Times: []pcmax.Time{1}}
	if _, err := solver.LS(context.Background(), bad); err == nil {
		t.Fatal("LS accepted invalid instance")
	}
	if _, err := solver.LPT(context.Background(), bad); err == nil {
		t.Fatal("LPT accepted invalid instance")
	}
	if _, err := solver.MultiFit(context.Background(), bad); err == nil {
		t.Fatal("MultiFit accepted invalid instance")
	}
	if _, _, err := solver.PTAS(context.Background(), bad, solver.DefaultPTASOptions()); err == nil {
		t.Fatal("PTAS accepted invalid instance")
	}
	if _, _, err := solver.Exact(context.Background(), bad, solver.ExactOptions{}); err == nil {
		t.Fatal("Exact accepted invalid instance")
	}
}

func TestPTASDefaultsMatchPaper(t *testing.T) {
	opts := solver.DefaultPTASOptions()
	if opts.Epsilon != 0.3 || opts.Workers != 1 {
		t.Fatalf("defaults = %+v", opts)
	}
	in := sampleInstance()
	s, st, err := solver.PTAS(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 4 {
		t.Fatalf("k = %d, want 4 for eps=0.3", st.K)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestPTASRejectsZeroOptions(t *testing.T) {
	if _, _, err := solver.PTAS(context.Background(), sampleInstance(), solver.PTASOptions{}); err == nil {
		t.Fatal("zero options (eps=0) must be rejected")
	}
}

func TestPTASVariantsAgree(t *testing.T) {
	in := sampleInstance()
	base := solver.DefaultPTASOptions()
	ref, _, err := solver.PTAS(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []solver.PTASOptions{
		{Epsilon: 0.3, Workers: 4},
		{Epsilon: 0.3, Workers: 1, PaperFaithful: true},
		{Epsilon: 0.3, Workers: 4, PaperFaithful: true},
		{Epsilon: 0.3, Workers: 1, ShortJobsLS: false},
	}
	for i, opts := range variants {
		got, _, err := solver.PTAS(context.Background(), in, opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if got.Makespan(in) != ref.Makespan(in) {
			t.Fatalf("variant %d: makespan %d != %d", i, got.Makespan(in), ref.Makespan(in))
		}
	}
}

func TestPTASAdaptiveFillReportsRouting(t *testing.T) {
	// The default options route parallel solves through the adaptive fill;
	// the schedule must match the sequential reference and PTASStats.Auto
	// must account for the levels filled.
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 8, N: 60, Seed: 11})
	seq := solver.DefaultPTASOptions()
	ref, refSt, err := solver.PTAS(context.Background(), in, seq)
	if err != nil {
		t.Fatal(err)
	}
	if refSt.TotalEntriesFilled == 0 {
		t.Fatal("instance has no long jobs; pick a seed whose solve fills DP tables")
	}
	par := solver.DefaultPTASOptions()
	par.Workers = 4
	got, st, err := solver.PTAS(context.Background(), in, par)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan(in) != ref.Makespan(in) {
		t.Fatalf("adaptive makespan %d != sequential %d", got.Makespan(in), ref.Makespan(in))
	}
	if st.Auto.LevelsInline+st.Auto.LevelsFused+st.Auto.LevelsParallel == 0 {
		t.Fatalf("PTASStats.Auto empty after an adaptive parallel solve: %+v", st.Auto)
	}
	// PaperFaithful keeps the paper's per-level dispatch: no adaptive stats.
	pf := solver.DefaultPTASOptions()
	pf.Workers = 4
	pf.PaperFaithful = true
	_, pfSt, err := solver.PTAS(context.Background(), in, pf)
	if err != nil {
		t.Fatal(err)
	}
	if pfSt.Auto.LevelsInline+pfSt.Auto.LevelsFused+pfSt.Auto.LevelsParallel != 0 {
		t.Fatalf("paper-faithful solve reported adaptive routing: %+v", pfSt.Auto)
	}
}

func TestPTASShortJobsLSMayDifferButIsValid(t *testing.T) {
	in := sampleInstance()
	s, _, err := solver.PTAS(context.Background(), in, solver.PTASOptions{Epsilon: 0.3, Workers: 1, ShortJobsLS: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestPTASTableBudgetError(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.Um_2m1, M: 20, N: 41, Seed: 2})
	opts := solver.DefaultPTASOptions()
	opts.MaxTableEntries = 2
	if _, _, err := solver.PTAS(context.Background(), in, opts); err == nil {
		t.Fatal("want table budget error")
	}
}

func TestExactOptimalAndOrdered(t *testing.T) {
	in := sampleInstance()
	s, res, err := solver.Exact(context.Background(), in, solver.ExactOptions{TimeLimit: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("small instance not proved optimal")
	}
	if res.Makespan != s.Makespan(in) || res.Makespan < res.LowerBound {
		t.Fatalf("inconsistent result %+v vs schedule %d", res, s.Makespan(in))
	}
}

func TestEndToEndOrderingProperty(t *testing.T) {
	// Fundamental ordering on every random instance:
	// opt <= PTAS <= (1+eps)*opt, opt <= LPT, opt <= MultiFit, opt <= LS.
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		src := rng.New(seed)
		m := int(mRaw%5) + 1
		n := int(nRaw%25) + 1
		times := make([]pcmax.Time, n)
		for j := range times {
			times[j] = pcmax.Time(1 + src.Int64n(99))
		}
		in := &pcmax.Instance{M: m, Times: times}
		exactS, res, err := solver.Exact(context.Background(), in, solver.ExactOptions{})
		if err != nil || !res.Optimal {
			return false
		}
		opt := exactS.Makespan(in)
		ptas, _, err := solver.PTAS(context.Background(), in, solver.DefaultPTASOptions())
		if err != nil {
			return false
		}
		lpt, err := solver.LPT(context.Background(), in)
		if err != nil {
			return false
		}
		ls, err := solver.LS(context.Background(), in)
		if err != nil {
			return false
		}
		mf, err := solver.MultiFit(context.Background(), in)
		if err != nil {
			return false
		}
		return ptas.Makespan(in) >= opt &&
			float64(ptas.Makespan(in)) <= 1.3*float64(opt)+1e-9 &&
			lpt.Makespan(in) >= opt &&
			ls.Makespan(in) >= opt &&
			mf.Makespan(in) >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
