package solver_test

import (
	"context"
	"testing"

	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

func TestSahniExactMatchesExactSolver(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_10, M: 3, N: 20, Seed: 6})
	s, err := solver.Sahni(context.Background(), in, solver.SahniOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := solver.Exact(context.Background(), in, solver.ExactOptions{})
	if err != nil || !res.Optimal {
		t.Fatalf("exact: %v optimal=%v", err, res.Optimal)
	}
	if s.Makespan(in) != res.Makespan {
		t.Fatalf("Sahni %d != optimal %d", s.Makespan(in), res.Makespan)
	}
}

func TestSahniFPTASGuarantee(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 3, N: 25, Seed: 6})
	s, err := solver.Sahni(context.Background(), in, solver.SahniOptions{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := solver.Exact(context.Background(), in, solver.ExactOptions{})
	if err != nil || !res.Optimal {
		t.Fatalf("exact: %v", err)
	}
	if float64(s.Makespan(in)) > 1.2*float64(res.Makespan)+1e-9 {
		t.Fatalf("FPTAS guarantee broken: %d vs %d", s.Makespan(in), res.Makespan)
	}
}

func TestSahniRejectsLargeM(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_10, M: 12, N: 20, Seed: 6})
	if _, err := solver.Sahni(context.Background(), in, solver.SahniOptions{}); err == nil {
		t.Fatal("want machine-limit error")
	}
}

func TestSpeculativePTASThroughFacade(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_10n, M: 8, N: 40, Seed: 6})
	opts := solver.DefaultPTASOptions()
	ref, _, err := solver.PTAS(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.SpeculativeProbes = 4
	got, st, err := solver.PTAS(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan(in) != ref.Makespan(in) {
		t.Fatalf("speculative %d != sequential %d", got.Makespan(in), ref.Makespan(in))
	}
	if st.Iterations < 1 {
		t.Fatal("no rounds recorded")
	}
}

func TestSahniEmptyInstance(t *testing.T) {
	in := &pcmax.Instance{M: 2}
	s, err := solver.Sahni(context.Background(), in, solver.SahniOptions{})
	if err != nil || s.Makespan(in) != 0 {
		t.Fatalf("%v", err)
	}
}

func TestExactParallelWorkers(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 5, N: 30, Seed: 14})
	_, seq, err := solver.Exact(context.Background(), in, solver.ExactOptions{})
	if err != nil || !seq.Optimal {
		t.Fatalf("%v optimal=%v", err, seq.Optimal)
	}
	_, par, err := solver.Exact(context.Background(), in, solver.ExactOptions{Workers: 4})
	if err != nil || !par.Optimal {
		t.Fatalf("%v optimal=%v", err, par.Optimal)
	}
	if seq.Makespan != par.Makespan {
		t.Fatalf("parallel exact %d != sequential %d", par.Makespan, seq.Makespan)
	}
}
