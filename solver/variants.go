package solver

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/exact"
	"repro/internal/trsched"
	"repro/pcmax"
)

// This file is the variant-dispatch layer of the registry: per-algorithm
// capability sets over pcmax.Variant, the typed error for capability misses,
// the Solve helper that routes an instance to a named algorithm only when the
// algorithm supports the instance's variant, and the variant-capable
// algorithms themselves ("ptas-tr", "brute", and the generalized "ls"/"lpt").

// ErrUnsupportedVariant matches every capability miss: the selected algorithm
// does not support some feature (release times, setup times, availability
// windows) the instance uses. The concrete error is a *VariantError.
var ErrUnsupportedVariant = errors.New("solver: algorithm does not support the instance variant")

// VariantError reports which algorithm rejected which instance variant; it
// unwraps to ErrUnsupportedVariant.
type VariantError struct {
	// Algorithm is the registry name of the rejecting algorithm.
	Algorithm string
	// Variant is the instance's variant.
	Variant pcmax.Variant
	// Supported is the algorithm's capability set.
	Supported pcmax.Variant
}

func (e *VariantError) Error() string {
	return fmt.Sprintf("solver: algorithm %q supports only %s instances, got %s",
		e.Algorithm, e.Supported, e.Variant)
}

func (e *VariantError) Unwrap() error { return ErrUnsupportedVariant }

// VariantCapable is the optional interface an Algorithm implements to declare
// support for instance-model features beyond plain P||Cmax. Algorithms that
// do not implement it are treated as plain-only.
type VariantCapable interface {
	// Capabilities returns the set of feature bits the algorithm handles.
	Capabilities() pcmax.Variant
}

// capabilitiesOf resolves an algorithm's capability set; plain-only when the
// algorithm does not declare one.
func capabilitiesOf(a Algorithm) pcmax.Variant {
	if vc, ok := a.(VariantCapable); ok {
		return vc.Capabilities()
	}
	return pcmax.Plain
}

// Capabilities returns the registered algorithm's variant capability set.
func Capabilities(name string) (pcmax.Variant, error) {
	a, err := Lookup(name)
	if err != nil {
		return 0, err
	}
	return capabilitiesOf(a), nil
}

// checkVariant rejects instances whose variant uses features outside the
// algorithm's capability set.
func checkVariant(a Algorithm, in *pcmax.Instance) error {
	v := in.Variant()
	caps := capabilitiesOf(a)
	if v&^caps != 0 {
		return &VariantError{Algorithm: a.Name(), Variant: v, Supported: caps}
	}
	return nil
}

// Solve dispatches the instance to the named algorithm, enforcing the
// algorithm's variant capability set: an instance using features the
// algorithm does not support fails fast with a *VariantError (matching
// ErrUnsupportedVariant) instead of being solved under the wrong semantics.
// This is the intended entry point for name-driven callers (CLIs, benchmark
// harnesses); it covers externally registered algorithms too.
func Solve(ctx context.Context, name string, in *pcmax.Instance, opts Options) (*pcmax.Schedule, Report, error) {
	a, err := Lookup(name)
	if err != nil {
		return nil, Report{}, err
	}
	if verr := checkVariant(a, in); verr != nil {
		return nil, Report{Algorithm: a.Name()}, verr
	}
	return a.Solve(ctx, in, opts)
}

// CapableNames returns the sorted names of registered algorithms whose
// capability sets cover the variant.
func CapableNames(v pcmax.Variant) []string {
	var names []string
	for n, a := range Registry {
		if v&^capabilitiesOf(a) == 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// DefaultAlgorithm picks the registry algorithm best suited to the variant:
// the guaranteed approximation scheme when one applies ("ptas" on plain
// instances, "ptas-tr" on setup/window instances), the generalized LPT greedy
// otherwise.
func DefaultAlgorithm(v pcmax.Variant) string {
	switch {
	case v == pcmax.Plain:
		return "ptas"
	case v&^trsched.Capabilities == 0:
		return "ptas-tr"
	default:
		return "lpt"
	}
}

// TROptions configures TimeRestricted (registry name "ptas-tr"), the
// bisection solver for instances with availability windows and setup times.
// The zero value selects the library defaults.
type TROptions struct {
	// Epsilon is the grouped-mode rounding coarseness (sizes round up to
	// multiples of max(1, eps*T/4) when the instance has too many distinct
	// sizes for exact mode); 0 selects the default 0.3. Exact mode ignores
	// it.
	Epsilon float64
	// MaxConfigs caps per-probe configuration enumeration; <= 0 uses the
	// library default.
	MaxConfigs int
	// MaxStates caps the per-probe machine-DP state space; <= 0 uses
	// trsched.DefaultMaxStates.
	MaxStates int64
	// MaxDistinctExact is the distinct-size threshold below which exact mode
	// runs; <= 0 uses trsched.DefaultMaxDistinctExact.
	MaxDistinctExact int
}

// DefaultTROptions mirrors the PTAS default coarseness.
func DefaultTROptions() TROptions { return TROptions{Epsilon: 0.3} }

// TRStats reports what one TimeRestricted run did; see trsched.Stats.
type TRStats struct {
	// Iterations counts bisection probes.
	Iterations int
	// LB and UB bracket the initial bisection interval.
	LB, UB pcmax.Time
	// FinalT is the smallest certified-feasible target found.
	FinalT pcmax.Time
	// Configs counts the configurations enumerated at the final feasible
	// probe.
	Configs int
	// States is the machine-DP state-space size at the final feasible probe.
	States int64
	// SizeClasses is the number of distinct (possibly rounded) sizes.
	SizeClasses int
	// Exact reports exact mode: FinalT is the certified optimal makespan.
	Exact bool
	// UsedLPTFallback reports that the generalized-LPT incumbent was
	// returned because no probe beat it (grouped mode only).
	UsedLPTFallback bool
}

// trOptions resolves the effective TR options so the zero value works.
func trOptions(opts TROptions) trsched.Options {
	if opts.Epsilon == 0 {
		opts.Epsilon = DefaultTROptions().Epsilon
	}
	return trsched.Options{
		Epsilon:          opts.Epsilon,
		MaxConfigs:       opts.MaxConfigs,
		MaxStates:        opts.MaxStates,
		MaxDistinctExact: opts.MaxDistinctExact,
	}
}

// TimeRestricted schedules an instance with availability windows and/or
// machine setup times by bisection over the target makespan, certifying each
// probe with configuration enumeration, per-machine window packing and a
// machine-covering dynamic program (see internal/trsched). With few distinct
// job sizes the result is a certified optimum (TRStats.Exact); otherwise the
// sizes are rounded and the result is a certified upper bound no worse than
// generalized LPT. Plain instances are accepted (the solver degenerates to
// an exact plain bisection); release times are not.
func TimeRestricted(ctx context.Context, in *pcmax.Instance, opts TROptions) (*pcmax.Schedule, *TRStats, error) {
	sched, st, err := trsched.Solve(ctx, in, trOptions(opts))
	tst := TRStats(st)
	return sched, &tst, err
}

// BruteForceVariant computes a certified-optimal schedule for any instance
// variant by exhaustive search (registry name "brute"). It is a small-n test
// oracle — the reference optimum for the variant guarantee tests — not a
// production solver; see exact.BruteForceMaxJobs.
func BruteForceVariant(ctx context.Context, in *pcmax.Instance) (*pcmax.Schedule, ExactResult, error) {
	sched, res, err := exact.BruteForceVariant(ctx, in)
	if err != nil {
		return nil, ExactResult{}, err
	}
	return sched, ExactResult(res), nil
}

func init() {
	Register(algo{name: "ptas-tr", caps: trsched.Capabilities,
		fn: func(ctx context.Context, in *pcmax.Instance, opts Options, rep *Report) (*pcmax.Schedule, error) {
			sched, st, err := TimeRestricted(ctx, in, opts.TR)
			rep.TR = st
			return sched, err
		}})
	Register(algo{name: "brute", caps: pcmax.AllVariants,
		fn: func(ctx context.Context, in *pcmax.Instance, _ Options, rep *Report) (*pcmax.Schedule, error) {
			sched, res, err := BruteForceVariant(ctx, in)
			if err != nil {
				return nil, err
			}
			rep.Exact = &res
			return sched, nil
		}})
}
