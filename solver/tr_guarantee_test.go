package solver_test

import (
	"context"
	"testing"

	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// TestTRGuaranteeAgainstExactOptima is the differential anchor of the
// ptas-tr registry algorithm: across setup/window variants, shapes and eps
// values, the time-restricted solver is cross-checked against brute-force
// optima. Exact mode (few distinct sizes) must hit the optimum exactly;
// grouped mode must stay sound (never below the optimum, never above its own
// certified bound).
func TestTRGuaranteeAgainstExactOptima(t *testing.T) {
	variants := []pcmax.Variant{
		pcmax.SetupTimes,
		pcmax.TimeRestricted,
		pcmax.SetupTimes | pcmax.TimeRestricted,
	}
	shapes := []struct{ m, n int }{{2, 8}, {3, 10}}
	for _, eps := range []float64{0.5, 0.3, 0.1} {
		for _, v := range variants {
			for _, sh := range shapes {
				for seed := uint64(1); seed <= 3; seed++ {
					in := workload.MustGenerateVariant(workload.VariantSpec{
						Spec:    workload.Spec{Family: workload.U1_10, M: sh.m, N: sh.n, Seed: seed},
						Variant: v,
					})

					exactS, res, err := solver.BruteForceVariant(context.Background(), in)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Optimal {
						t.Fatalf("%v m=%d n=%d: brute did not certify", v, sh.m, sh.n)
					}
					opt := exactS.Makespan(in)

					opts := solver.Options{TR: solver.TROptions{Epsilon: eps}}
					sched, rep, err := solver.Solve(context.Background(), "ptas-tr", in, opts)
					if err != nil {
						t.Fatalf("%v m=%d n=%d eps=%v seed=%d: %v", v, sh.m, sh.n, eps, seed, err)
					}
					if err := sched.Feasible(in); err != nil {
						t.Fatalf("%v m=%d n=%d eps=%v seed=%d: infeasible: %v", v, sh.m, sh.n, eps, seed, err)
					}
					if rep.TR == nil {
						t.Fatalf("%v m=%d n=%d: no TR stats", v, sh.m, sh.n)
					}
					ms := sched.Makespan(in)
					if ms < opt {
						t.Fatalf("%v m=%d n=%d eps=%v seed=%d: makespan %d below optimum %d",
							v, sh.m, sh.n, eps, seed, ms, opt)
					}
					// U(1,10) sizes give at most 10 distinct values, within
					// the exact-mode threshold: the result must be the
					// certified optimum, not just within a ratio band.
					if !rep.TR.Exact {
						t.Fatalf("%v m=%d n=%d eps=%v seed=%d: expected exact mode (stats %+v)",
							v, sh.m, sh.n, eps, seed, rep.TR)
					}
					if ms != opt {
						t.Fatalf("%v m=%d n=%d eps=%v seed=%d: exact mode returned %d, optimum %d",
							v, sh.m, sh.n, eps, seed, ms, opt)
					}
				}
			}
		}
	}
}

// TestTRGuaranteeGroupedMode forces configuration grouping (the approximate
// path) and checks soundness: the schedule stays feasible and its makespan
// sits between the brute-force optimum and the solver's own reported upper
// bound.
func TestTRGuaranteeGroupedMode(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		in := workload.MustGenerateVariant(workload.VariantSpec{
			Spec:    workload.Spec{Family: workload.U1_100, M: 3, N: 9, Seed: seed},
			Variant: pcmax.SetupTimes | pcmax.TimeRestricted,
		})
		exactS, res, err := solver.BruteForceVariant(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatal("brute did not certify")
		}
		opt := exactS.Makespan(in)

		opts := solver.Options{TR: solver.TROptions{Epsilon: 0.3, MaxDistinctExact: 1}}
		sched, rep, err := solver.Solve(context.Background(), "ptas-tr", in, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.TR.Exact {
			t.Fatalf("seed %d: grouped mode not forced", seed)
		}
		ms := sched.Makespan(in)
		if ms < opt {
			t.Fatalf("seed %d: grouped makespan %d below optimum %d", seed, ms, opt)
		}
		if ms > rep.TR.UB {
			t.Fatalf("seed %d: makespan %d above the reported bound %d", seed, ms, rep.TR.UB)
		}
	}
}
