package solver_test

// Cancellation-contract coverage at the public API: a canceled mid-fill PTAS
// must come back within a small latency bound with the structured error, a
// usable fallback schedule and no leaked goroutines; the registry must mark
// interrupted solves uniformly.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// slowInstance returns an instance/epsilon pair whose sequential PTAS solve
// takes seconds (DP tables around 1.7M entries): plenty of mid-fill runway
// for a 50ms cancellation.
func slowInstance(t *testing.T) (*pcmax.Instance, solver.PTASOptions) {
	t.Helper()
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 20, N: 100, Seed: 7})
	o := solver.DefaultPTASOptions()
	o.Epsilon = 0.18
	o.Workers = 1
	return in, o
}

func TestPTASCancellationLatency(t *testing.T) {
	in, opts := slowInstance(t)
	before := runtime.NumGoroutine()

	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := opts
			o.Workers = tc.workers
			// The bound is wall-clock, so on an oversubscribed host (CI
			// shares cores with sibling test binaries and GC) a single
			// measurement can overshoot for reasons unrelated to the solver's
			// reaction time. Retry a bounded number of times: a solver that
			// genuinely stops reacting fails every attempt.
			const attempts = 3
			for attempt := 1; ; attempt++ {
				ctx, cancel := context.WithCancel(context.Background())
				timer := time.AfterFunc(50*time.Millisecond, cancel)

				t0 := time.Now()
				sched, st, err := solver.PTAS(ctx, in, o)
				elapsed := time.Since(t0)
				timer.Stop()
				cancel()

				if err == nil {
					t.Fatal("want cancellation error, got nil (instance too fast for the test?)")
				}
				if !errors.Is(err, solver.ErrCanceled) {
					t.Fatalf("error %v does not match solver.ErrCanceled", err)
				}
				if sched == nil {
					t.Fatal("want non-nil fallback schedule on cancellation")
				}
				if err := sched.Validate(in); err != nil {
					t.Fatalf("fallback schedule invalid: %v", err)
				}
				if st == nil {
					t.Fatal("want partial stats on cancellation")
				}
				var interruption *solver.Interruption
				if !errors.As(err, &interruption) {
					t.Fatalf("error %v does not carry *solver.Interruption", err)
				}
				// 50ms until the cancel fires plus the 200ms reaction bound
				// the package documents.
				if elapsed <= 250*time.Millisecond {
					break
				}
				if attempt == attempts {
					t.Fatalf("canceled solve took %v on all %d attempts, want < 250ms", elapsed, attempts)
				}
				t.Logf("attempt %d: canceled solve took %v (> 250ms), retrying", attempt, elapsed)
			}
		})
	}

	// The canceled solves must not leave fill workers behind. Poll briefly:
	// goroutine teardown is asynchronous.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPTASDeadlineError(t *testing.T) {
	in, opts := slowInstance(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	sched, _, err := solver.PTAS(ctx, in, opts)
	if !errors.Is(err, solver.ErrDeadline) {
		t.Fatalf("error %v does not match solver.ErrDeadline", err)
	}
	if !errors.Is(err, solver.ErrCanceled) {
		t.Fatalf("error %v does not match solver.ErrCanceled (ErrDeadline must wrap it)", err)
	}
	if sched == nil {
		t.Fatal("want fallback schedule on deadline")
	}
}

func TestPTASTimeLimitShim(t *testing.T) {
	in, opts := slowInstance(t)
	opts.TimeLimit = 50 * time.Millisecond
	sched, _, err := solver.PTAS(context.Background(), in, opts)
	if !errors.Is(err, solver.ErrDeadline) {
		t.Fatalf("TimeLimit shim error %v does not match solver.ErrDeadline", err)
	}
	if sched == nil {
		t.Fatal("want fallback schedule from the TimeLimit shim")
	}
}

func TestRegistryCoversAllAlgorithms(t *testing.T) {
	want := []string{"brute", "exact", "ip", "lpt", "ls", "multifit", "ptas", "ptas-sparse", "ptas-tr", "sahni"}
	got := solver.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}

	// Small instance with m=3 so even sahni's fixed-m DP accepts it.
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_10, M: 3, N: 9, Seed: 3})
	for _, name := range got {
		alg, err := solver.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if alg.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, alg.Name())
		}
		sched, rep, err := alg.Solve(context.Background(), in, solver.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sched == nil {
			t.Fatalf("%s: nil schedule", name)
		}
		if err := sched.Validate(in); err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		if rep.Algorithm != name {
			t.Fatalf("%s: report names %q", name, rep.Algorithm)
		}
		if rep.Makespan != sched.Makespan(in) {
			t.Fatalf("%s: report makespan %d != schedule %d", name, rep.Makespan, sched.Makespan(in))
		}
		if rep.Interrupted {
			t.Fatalf("%s: uncanceled solve marked interrupted", name)
		}
	}
}

func TestRegistryLookupMiss(t *testing.T) {
	_, err := solver.Lookup("no-such-algorithm")
	if err == nil {
		t.Fatal("want error for unknown algorithm")
	}
	for _, name := range solver.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("miss error %q does not list %q", err, name)
		}
	}
}

func TestRegistryMarksInterrupted(t *testing.T) {
	in, opts := slowInstance(t)
	alg, err := solver.Lookup("ptas")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	sched, rep, err := alg.Solve(ctx, in, solver.Options{PTAS: opts})
	if !errors.Is(err, solver.ErrCanceled) {
		t.Fatalf("error %v does not match solver.ErrCanceled", err)
	}
	if !rep.Interrupted {
		t.Fatal("report not marked interrupted")
	}
	if sched == nil || rep.Makespan == 0 {
		t.Fatalf("interrupted report lost the fallback: sched=%v makespan=%d", sched, rep.Makespan)
	}
}
