package solver

import (
	"context"
	"errors"
	"testing"

	"repro/internal/workload"
	"repro/pcmax"
)

func sessionInstance(t testing.TB, fam workload.Family, m, n int, seed uint64) *pcmax.Instance {
	t.Helper()
	in, err := workload.Generate(workload.Spec{Family: fam, M: m, N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewSessionRejectsBadEpsilon(t *testing.T) {
	if _, err := NewSession(SessionOptions{}); err == nil {
		t.Fatal("zero Epsilon accepted")
	}
}

func TestSessionColdSolveThenAccessors(t *testing.T) {
	in := sessionInstance(t, workload.U1_100, 5, 40, 1)
	s, err := NewSession(DefaultSessionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Schedule(); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("pre-solve Schedule err = %v, want ErrNoSolution", err)
	}
	sched, st, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if st.Path != DeltaCold || st.PTAS == nil {
		t.Fatalf("cold solve stats = %+v", st)
	}
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
	got, ms, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if ms != sched.Makespan(in) {
		t.Fatalf("accessor makespan %d != returned %d", ms, sched.Makespan(in))
	}
	// The accessor must hand out a copy, not the live state.
	got.Assignment[0] = -99
	again, _, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if again.Assignment[0] == -99 {
		t.Fatal("Schedule returned the session's live schedule")
	}
	if lb := s.LowerBound(); lb <= 0 || lb > ms {
		t.Fatalf("certified LB %d outside (0, %d]", lb, ms)
	}
}

func TestSessionSolveDeltaBeforeSolve(t *testing.T) {
	s, err := NewSession(DefaultSessionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SolveDelta(context.Background(), []pcmax.Time{5}, nil); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
}

func TestSessionRejectsVariantInstances(t *testing.T) {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{3, 4}, Release: []pcmax.Time{0, 5}}
	s, err := NewSession(DefaultSessionOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Solve(context.Background(), in)
	if !errors.Is(err, ErrUnsupportedVariant) {
		t.Fatalf("err = %v, want ErrUnsupportedVariant", err)
	}
	var verr *VariantError
	if !errors.As(err, &verr) || verr.Algorithm != "session" {
		t.Fatalf("err = %v, want *VariantError for \"session\"", err)
	}
}

func TestSessionBadDeltasLeaveStateUntouched(t *testing.T) {
	in := sessionInstance(t, workload.U1_100, 5, 30, 2)
	s, err := NewSession(DefaultSessionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	before, beforeMS, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name   string
		add    []pcmax.Time
		remove []int
	}{
		{"out of range", nil, []int{30}},
		{"negative index", nil, []int{-1}},
		{"repeated index", nil, []int{3, 3}},
		{"non-positive time", []pcmax.Time{0}, nil},
	}
	for _, c := range bad {
		if _, _, err := s.SolveDelta(context.Background(), c.add, c.remove); !errors.Is(err, ErrBadDelta) {
			t.Fatalf("%s: err = %v, want ErrBadDelta", c.name, err)
		}
	}
	after, afterMS, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if afterMS != beforeMS || len(after.Assignment) != len(before.Assignment) {
		t.Fatal("failed delta mutated the session state")
	}
	if s.Instance().N() != in.N() {
		t.Fatal("failed delta mutated the session instance")
	}
}

func TestSessionDeltaSmallMutation(t *testing.T) {
	in := sessionInstance(t, workload.U1_100, 10, 100, 3)
	s, err := NewSession(DefaultSessionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	sched, st, err := s.SolveDelta(context.Background(), []pcmax.Time{57}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 100 || st.Added != 1 || st.Removed != 1 {
		t.Fatalf("delta stats = %+v", st)
	}
	cur := s.Instance()
	if err := sched.Validate(cur); err != nil {
		t.Fatal(err)
	}
	// The accepted makespan must satisfy the certificate against the
	// updated certified lower bound regardless of path.
	eps := DefaultSessionOptions().PTAS.Epsilon
	if float64(st.Makespan) > (1+eps)*float64(st.LowerBound)+1e-9 &&
		st.Path == DeltaRepair {
		t.Fatalf("repair accepted outside certificate: %+v", st)
	}
	// Mutation semantics: survivor order is preserved, added job appended.
	if cur.N() != 100 || cur.Times[99] != 57 {
		t.Fatalf("mutated instance wrong: n=%d last=%d", cur.N(), cur.Times[99])
	}
	if cur.Times[3] != in.Times[4] {
		t.Fatalf("removal did not compact: got %d want %d", cur.Times[3], in.Times[4])
	}
}

func TestSessionRepairFractionDisablesRepair(t *testing.T) {
	in := sessionInstance(t, workload.U1_100, 10, 100, 4)
	opts := DefaultSessionOptions()
	opts.RepairFraction = -1
	s, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	_, st, err := s.SolveDelta(context.Background(), []pcmax.Time{10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Path == DeltaRepair {
		t.Fatal("repair path ran despite RepairFraction < 0")
	}
	if st.PTAS == nil {
		t.Fatal("warm path reported no PTAS stats")
	}
}

func TestSessionDrainToEmptyAndRegrow(t *testing.T) {
	in := sessionInstance(t, workload.U1_10, 4, 20, 5)
	s, err := NewSession(DefaultSessionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	all := make([]int, in.N())
	for j := range all {
		all[j] = j
	}
	sched, st, err := s.SolveDelta(context.Background(), nil, all)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 0 || len(sched.Assignment) != 0 || st.Makespan != 0 {
		t.Fatalf("drained state = %+v", st)
	}
	// Regrow from empty.
	sched, st, err = s.SolveDelta(context.Background(), []pcmax.Time{9, 7, 5, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 4 {
		t.Fatalf("regrown stats = %+v", st)
	}
	if err := sched.Validate(s.Instance()); err != nil {
		t.Fatal(err)
	}
}

func TestSessionCounters(t *testing.T) {
	in := sessionInstance(t, workload.U1_100, 10, 100, 6)
	s, err := NewSession(DefaultSessionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := s.SolveDelta(context.Background(), []pcmax.Time{20 + pcmax.Time(i)}, []int{i}); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Counters()
	if c.Solves != 4 || c.Cold+c.Warm+c.Repairs != 4 || c.Cold < 1 {
		t.Fatalf("counters = %+v", c)
	}
}
