package solver

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/lb"
	"repro/internal/listsched"
	"repro/pcmax"
)

// This file implements incremental solving: a Session owns the last accepted
// solution, a certified lower bound on its optimum, and a persistent DP
// cache, and re-solves after instance mutations through three stacked fast
// paths instead of from scratch. It is the ROADMAP's "online/incremental
// solving" item: the serving workload (jobs arrive, finish, get cancelled)
// pays for a delta, not a cold solve.

// ErrBadDelta matches malformed SolveDelta mutations: a removal index out of
// range or repeated, or a non-positive added processing time.
var ErrBadDelta = errors.New("solver: invalid delta")

// ErrNoSolution matches Session calls that need a current solution (e.g.
// Schedule) before any Solve/SolveDelta succeeded.
var ErrNoSolution = errors.New("solver: session has no accepted solution yet")

// sessionAlgorithmName is the name *VariantError reports for Session's
// capability gate. Session drives the plain-instance PTAS pipeline, so its
// capability set is pcmax.Plain.
const sessionAlgorithmName = "session"

// SessionOptions configures a Session. The zero value is invalid (the
// embedded PTAS options need a positive Epsilon); start from
// DefaultSessionOptions.
type SessionOptions struct {
	// PTAS configures the underlying scheme: Epsilon sets both the solve
	// guarantee and the repair acceptance certificate.
	PTAS PTASOptions
	// RepairFraction bounds the LPT-repair fast path: the repair is
	// attempted only when the mutation touches at most
	// max(1, RepairFraction*n) jobs (n after the mutation). 0 selects the
	// default 0.25; negative disables the repair path entirely (every delta
	// goes to the warm bisection).
	RepairFraction float64
}

// DefaultSessionOptions returns the default incremental configuration: the
// default PTAS options and repair attempted for deltas up to a quarter of
// the instance.
func DefaultSessionOptions() SessionOptions {
	return SessionOptions{PTAS: DefaultPTASOptions(), RepairFraction: 0.25}
}

// DeltaPath identifies which fast path produced a SolveDelta result.
type DeltaPath int

const (
	// DeltaCold is a full cold solve (first Solve, or a delta that fell
	// through every fast path restart).
	DeltaCold DeltaPath = iota
	// DeltaRepair accepted the LPT-repaired previous schedule: the repaired
	// makespan was within the (1+eps) certificate of the updated lower
	// bound, so no bisection ran at all.
	DeltaRepair
	// DeltaWarm ran the bisection warm-started from the previous solution's
	// bracket, with the session cache carrying config sets across the delta.
	DeltaWarm
)

// String names the path.
func (p DeltaPath) String() string {
	switch p {
	case DeltaCold:
		return "cold"
	case DeltaRepair:
		return "repair"
	case DeltaWarm:
		return "warm"
	default:
		return fmt.Sprintf("DeltaPath(%d)", int(p))
	}
}

// DeltaStats reports what one Session solve did.
type DeltaStats struct {
	// Path is the fast path that produced the accepted result.
	Path DeltaPath
	// Added and Removed count the mutation's jobs; N is the job count after
	// it.
	Added, Removed, N int
	// LowerBound is the certified lower bound on the mutated instance's
	// optimum that the acceptance certificate used (the max of the fresh
	// instance bounds and the delta-shifted previous certificate,
	// lb.FromPrevious).
	LowerBound pcmax.Time
	// RepairMakespan is the LPT-repaired schedule's makespan — the warm
	// upper bracket. Zero when no previous solution existed.
	RepairMakespan pcmax.Time
	// Makespan is the accepted schedule's makespan.
	Makespan pcmax.Time
	// PTAS holds the underlying bisection's stats when one ran (warm and
	// cold paths); nil on the repair path.
	PTAS *PTASStats
}

// SessionCounters accumulates path traffic over a Session's lifetime.
type SessionCounters struct {
	// Solves counts every accepted solve (cold, repair and warm).
	Solves int64
	// Repairs, Warm and Cold split Solves by path.
	Repairs, Warm, Cold int64
}

// Session owns an evolving P||Cmax instance and re-solves it incrementally.
// It keeps the last accepted schedule, a certified lower bound on the
// current optimum, and a persistent dp.Cache, so SolveDelta can try, in
// order:
//
//  1. LPT repair — pull removed jobs, keep every surviving assignment,
//     place added jobs greedily (listsched.Repair). Accepted outright when
//     the repaired makespan is within (1+eps) of the updated certified
//     lower bound: the certificate then proves the (1+eps)·OPT guarantee
//     with no bisection at all.
//  2. Warm-started bisection — core.Solve seeded with
//     [shifted lower bound, repaired makespan] via core.Options.WarmBracket,
//     shrinking the probe count to the delta-shifted range; the session
//     cache turns repeated probes into enumeration-free hits.
//  3. Profile-keyed cache reuse — inside the warm solve, dp.Cache's
//     gcd-canonical profile keys let probes whose rounded job profile
//     is unchanged by the delta reuse cached configuration sets and
//     level indexes outright.
//
// Every accepted result carries the same (1+eps) guarantee grade as a cold
// solve of the mutated instance (see the path notes above and
// ALGORITHM.md §15); on error or cancellation the session state is
// unchanged — a Session never exposes a schedule that does not match its
// current instance.
//
// A Session is safe for concurrent use; solves serialize on its mutex.
// Session handles plain instances only (the capability set of the
// underlying PTAS pipeline): Solve rejects variant instances with a
// *VariantError.
type Session struct {
	mu   sync.Mutex
	opts SessionOptions

	// cache persists across every solve of the session (fast path 3).
	cache *dp.Cache

	// Accepted state; in is nil until the first successful Solve.
	in     *pcmax.Instance
	sched  *pcmax.Schedule
	ms     pcmax.Time
	certLB pcmax.Time

	counters SessionCounters
}

// NewSession returns a Session with the given options. Epsilon must be
// positive (ErrBadEpsilon otherwise, matching PTAS).
func NewSession(opts SessionOptions) (*Session, error) {
	if opts.RepairFraction == 0 {
		opts.RepairFraction = DefaultSessionOptions().RepairFraction
	}
	if _, err := core.KFor(opts.PTAS.Epsilon); err != nil {
		return nil, err
	}
	return &Session{opts: opts, cache: dp.NewCache()}, nil
}

// Solve cold-solves a full instance and makes it the session's current
// state, replacing any previous instance wholesale. The instance is copied;
// later caller mutations of in do not affect the session.
func (s *Session) Solve(ctx context.Context, in *pcmax.Instance) (*pcmax.Schedule, *DeltaStats, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if v := in.Variant(); v != pcmax.Plain {
		return nil, nil, &VariantError{Algorithm: sessionAlgorithmName, Variant: v, Supported: pcmax.Plain}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coldSolve(ctx, in.Clone(), &DeltaStats{Added: in.N(), N: in.N()})
}

// coldSolve runs the full bisection on next (which s takes ownership of),
// commits the result and fills st. Callers hold s.mu.
func (s *Session) coldSolve(ctx context.Context, next *pcmax.Instance, st *DeltaStats) (*pcmax.Schedule, *DeltaStats, error) {
	copts := coreOptions(s.opts.PTAS)
	copts.Cache = s.cache
	sched, cst, err := core.Solve(ctx, next, copts)
	if err != nil {
		return nil, nil, err
	}
	st.Path = DeltaCold
	s.commit(next, sched, cst, st)
	s.counters.Cold++
	return sched.Clone(), st, nil
}

// commit installs an accepted solution and derives the certified lower
// bound to carry into the next delta. In faithful mode the bisection's
// converged target is itself certified (every raise of the lower bracket
// passed an infeasible probe, an OPT witness; the initial bracket was
// certified); a sparse solve certifies it only when SparseCertified, and
// otherwise the initial bracket LB0 — fresh bounds intersected with the
// warm bracket, certified by induction — is kept instead. Callers hold
// s.mu.
func (s *Session) commit(next *pcmax.Instance, sched *pcmax.Schedule, cst *core.Stats, st *DeltaStats) {
	certLB := cst.LB0
	if !s.opts.PTAS.Sparsify || cst.SparseCertified {
		certLB = cst.FinalT
	}
	s.in = next
	s.sched = sched
	s.ms = sched.Makespan(next)
	s.certLB = certLB
	s.counters.Solves++
	pst := PTASStats(*cst)
	st.PTAS = &pst
	st.Makespan = s.ms
	st.LowerBound = certLB
	st.N = next.N()
}

// SolveDelta mutates the session's instance — remove lists job indices of
// the current instance (deduplicated, in range), add lists processing times
// appended as new jobs — and re-solves through the fast paths. Surviving
// jobs keep their relative order followed by the added jobs, and the
// returned schedule indexes jobs of the mutated instance (use Instance for
// the matching times). On any error (including cancellation) the session
// state is unchanged; on success the mutated instance becomes current.
//
// The first call may be a pure-add delta on an empty session: it behaves
// like Solve on the added jobs once M has been established by a previous
// Solve; without one it fails with ErrNoSolution.
func (s *Session) SolveDelta(ctx context.Context, add []pcmax.Time, remove []int) (*pcmax.Schedule, *DeltaStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.in == nil {
		return nil, nil, ErrNoSolution
	}

	next, keep, removedTotal, err := s.applyDelta(add, remove)
	if err != nil {
		return nil, nil, err
	}
	if err := next.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	st := &DeltaStats{Added: len(add), Removed: len(remove), N: next.N()}

	// Updated certified lower bound: the delta-shifted previous certificate
	// (lb.FromPrevious: removals lower OPT by at most their total, additions
	// never lower it) against the mutated instance's fresh bounds.
	newLB := next.LowerBound()
	if b := lb.FromPrevious(s.certLB, removedTotal); b > newLB {
		newLB = b
	}
	st.LowerBound = newLB

	// Fast path 1: LPT repair. Always built — its makespan is the warm
	// upper bracket either way — but only *accepted* without a bisection
	// when the delta is small enough and the certificate holds:
	// repairMS <= (1+eps)·newLB <= (1+eps)·OPT.
	repaired := listsched.Repair(next, keep)
	repairMS := repaired.Makespan(next)
	st.RepairMakespan = repairMS
	eps := s.opts.PTAS.Epsilon
	if s.repairAllowed(len(add)+len(remove), next.N()) &&
		float64(repairMS) <= (1+eps)*float64(newLB)+1e-9 {
		s.in = next
		s.sched = repaired
		s.ms = repairMS
		s.certLB = newLB
		s.counters.Solves++
		s.counters.Repairs++
		st.Path = DeltaRepair
		st.Makespan = repairMS
		return repaired.Clone(), st, nil
	}

	// Fast path 2: warm-started bisection. newLB is certified <= OPT and
	// the repaired schedule is valid, so [newLB, repairMS] is a correct
	// bracket; fast path 3 (profile-keyed config reuse) happens inside via
	// the session cache. A defensive cold retry covers the one way a warm
	// solve can fail that a cold solve would not — core.ErrInternal from a
	// bracket the invariants reject at runtime.
	copts := coreOptions(s.opts.PTAS)
	copts.Cache = s.cache
	if next.N() > 0 {
		copts.WarmBracket = &core.Bracket{LB: newLB, UB: repairMS}
	}
	sched, cst, err := core.Solve(ctx, next, copts)
	if errors.Is(err, core.ErrInternal) {
		return s.coldSolve(ctx, next, st)
	}
	if err != nil {
		return nil, nil, err
	}
	// Keep the better of the warm solve and the repair: both are valid, and
	// min(makespans) inherits the (1+eps)·OPT certificate from the solve.
	if repairMS < sched.Makespan(next) {
		sched = repaired
	}
	st.Path = DeltaWarm
	s.commit(next, sched, cst, st)
	s.counters.Warm++
	return sched.Clone(), st, nil
}

// applyDelta builds the mutated instance, the keep-map for repair (previous
// machine per surviving job, -1 per added job) and the removed total.
// Callers hold s.mu; the session is not modified.
func (s *Session) applyDelta(add []pcmax.Time, remove []int) (*pcmax.Instance, []int, pcmax.Time, error) {
	n := s.in.N()
	drop := make([]bool, n)
	var removedTotal pcmax.Time
	for _, j := range remove {
		if j < 0 || j >= n {
			return nil, nil, 0, fmt.Errorf("%w: removal index %d out of range [0,%d)", ErrBadDelta, j, n)
		}
		if drop[j] {
			return nil, nil, 0, fmt.Errorf("%w: removal index %d repeated", ErrBadDelta, j)
		}
		drop[j] = true
		removedTotal += s.in.Times[j]
	}
	for i, t := range add {
		if t <= 0 {
			return nil, nil, 0, fmt.Errorf("%w: added job %d has non-positive time %d", ErrBadDelta, i, t)
		}
	}
	times := make([]pcmax.Time, 0, n-len(remove)+len(add))
	keep := make([]int, 0, n-len(remove)+len(add))
	for j := 0; j < n; j++ {
		if drop[j] {
			continue
		}
		times = append(times, s.in.Times[j])
		keep = append(keep, s.sched.Assignment[j])
	}
	times = append(times, add...)
	for range add {
		keep = append(keep, -1)
	}
	return &pcmax.Instance{M: s.in.M, Times: times}, keep, removedTotal, nil
}

// repairAllowed reports whether the repair path may accept a delta of the
// given size on an n-job instance.
func (s *Session) repairAllowed(deltaSize, n int) bool {
	if s.opts.RepairFraction < 0 {
		return false
	}
	limit := int(s.opts.RepairFraction * float64(n))
	if limit < 1 {
		limit = 1
	}
	return deltaSize <= limit
}

// Instance returns a copy of the session's current instance, or nil before
// the first accepted solve.
func (s *Session) Instance() *pcmax.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.in == nil {
		return nil
	}
	return s.in.Clone()
}

// Schedule returns a copy of the last accepted schedule and its makespan.
func (s *Session) Schedule() (*pcmax.Schedule, pcmax.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sched == nil {
		return nil, 0, ErrNoSolution
	}
	return s.sched.Clone(), s.ms, nil
}

// LowerBound returns the session's certified lower bound on the current
// instance's optimal makespan (0 before the first accepted solve).
func (s *Session) LowerBound() pcmax.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.certLB
}

// Counters returns a snapshot of the session's path counters.
func (s *Session) Counters() SessionCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// CacheStats returns the session cache's lifetime counters (per-solve
// deltas are in each DeltaStats.PTAS.Cache).
func (s *Session) CacheStats() dp.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Stats()
}
