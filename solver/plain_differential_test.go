package solver_test

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// -update regenerates testdata/plain_golden.json from the current tree. The
// committed file was produced by the pre-variant-refactor code, so running
// the test without the flag proves the refactor preserved every plain-variant
// result bit for bit.
var updateGolden = flag.Bool("update", false, "rewrite testdata/plain_golden.json from the current algorithms")

// plainGoldenAlgos are the seven pre-refactor registry algorithms the suite
// pins. ptas-sparse certifies against the faithful run and ptas-tr arrived
// with the variant refactor, so neither belongs in the frozen baseline.
var plainGoldenAlgos = []string{"ls", "lpt", "multifit", "ptas", "exact", "ip", "sahni"}

// ptasCore freezes the PTASStats counters that define what the scheme did:
// rounding geometry, bisection trajectory and table shape. Timing and cache
// fields are deliberately excluded.
type ptasCore struct {
	K            int        `json:"k"`
	Iterations   int        `json:"iterations"`
	LB0          pcmax.Time `json:"lb0"`
	UB0          pcmax.Time `json:"ub0"`
	FinalT       pcmax.Time `json:"final_t"`
	LongJobs     int        `json:"long_jobs"`
	ShortJobs    int        `json:"short_jobs"`
	RoundingUnit pcmax.Time `json:"rounding_unit"`
	SizeClasses  int        `json:"size_classes"`
	TableEntries int64      `json:"table_entries"`
	Configs      int        `json:"configs"`
}

type goldenCell struct {
	Family   string     `json:"family"`
	M        int        `json:"m"`
	N        int        `json:"n"`
	Seed     uint64     `json:"seed"`
	Algo     string     `json:"algo"`
	Makespan pcmax.Time `json:"makespan"`
	PTAS     *ptasCore  `json:"ptas,omitempty"`
}

// goldenInstances enumerates the differential suite's instances: all six
// workload families at two shapes and two seeds each. Um_2m1 keeps the
// paper's n=2m+1 coupling.
func goldenInstances() []workload.Spec {
	var specs []workload.Spec
	shapes := []struct{ m, n int }{{3, 12}, {4, 16}}
	for _, fam := range workload.Families {
		for _, sh := range shapes {
			n := sh.n
			if fam == workload.Um_2m1 {
				n = 2*sh.m + 1
			}
			for _, seed := range []uint64{3, 7} {
				specs = append(specs, workload.Spec{Family: fam, M: sh.m, N: n, Seed: seed})
			}
		}
	}
	return specs
}

func solveGoldenCell(t *testing.T, in *pcmax.Instance, name string) goldenCell {
	t.Helper()
	alg, err := solver.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := solver.Options{PTAS: solver.DefaultPTASOptions()}
	opts.PTAS.Workers = 1
	// Exact-mode sahni exceeds its state budget at the larger golden shapes;
	// the suite pins its FPTAS-grade configuration instead.
	opts.Sahni = solver.SahniOptions{Epsilon: 0.25}
	sched, rep, err := alg.Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if verr := sched.Validate(in); verr != nil {
		t.Fatalf("%s: invalid schedule: %v", name, verr)
	}
	cell := goldenCell{Algo: name, Makespan: sched.Makespan(in)}
	if name == "ptas" {
		st := rep.PTAS
		if st == nil {
			t.Fatalf("ptas returned no stats")
		}
		cell.PTAS = &ptasCore{
			K: st.K, Iterations: st.Iterations, LB0: st.LB0, UB0: st.UB0,
			FinalT: st.FinalT, LongJobs: st.LongJobs, ShortJobs: st.ShortJobs,
			RoundingUnit: st.RoundingUnit, SizeClasses: st.SizeClasses,
			TableEntries: st.TableEntries, Configs: st.Configs,
		}
	}
	return cell
}

// TestPlainDifferentialGolden runs every pre-refactor registry algorithm on
// every golden instance and compares makespans (and the PTAS core counters)
// against the frozen pre-refactor baseline. Identical output here is the
// proof that the variant refactor is behavior-preserving on Plain instances.
func TestPlainDifferentialGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs exact solves; skipped in -short")
	}
	path := filepath.Join("testdata", "plain_golden.json")

	var got []goldenCell
	for _, spec := range goldenInstances() {
		in := workload.MustGenerate(spec)
		if v := in.Variant(); v != pcmax.Plain {
			t.Fatalf("workload.Generate produced non-plain variant %v", v)
		}
		for _, name := range plainGoldenAlgos {
			if name == "sahni" && spec.M > 3 {
				// Sahni's state space is exponential in m; the m=3 shapes
				// already pin it on every family at tolerable cost.
				continue
			}
			cell := solveGoldenCell(t, in, name)
			cell.Family, cell.M, cell.N, cell.Seed = spec.Family.String(), spec.M, spec.N, spec.Seed
			got = append(got, cell)
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cells to %s", len(got), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to regenerate): %v", err)
	}
	var want []goldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d cells, suite produced %d", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if g != w {
			if g.PTAS != nil && w.PTAS != nil && *g.PTAS == *w.PTAS {
				g.PTAS, w.PTAS = nil, nil
				if g == w {
					continue
				}
			}
			t.Errorf("cell %d (%s %s m=%d n=%d seed=%d): got %+v want %+v",
				i, w.Algo, w.Family, w.M, w.N, w.Seed, got[i], want[i])
		}
	}
}
