package solver_test

// Warm-vs-cold differential harness for solver.Session: every warm result
// must be certified within (1+eps) of a cold solve of the same mutated
// instance, across all six workload families, eps in {0.5, 0.2, 0.1}, and
// adversarial mutation streams. Runs under -race via scripts/check.sh.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/workload"
	"repro/pcmax"
	"repro/solver"
)

// coldSolve runs the plain cold PTAS on the instance at eps.
func coldSolve(t *testing.T, in *pcmax.Instance, eps float64) pcmax.Time {
	t.Helper()
	opts := solver.DefaultPTASOptions()
	opts.Epsilon = eps
	sched, _, err := solver.PTAS(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sched.Makespan(in)
}

// checkWarmResult asserts the invariants every accepted SolveDelta result
// must satisfy on the session's current instance: a valid non-stale
// schedule, a certified lower bound no larger than any achievable makespan,
// and a makespan within (1+eps) of a cold solve of the identical instance.
func checkWarmResult(t *testing.T, s *solver.Session, sched *pcmax.Schedule, st *solver.DeltaStats, eps float64, tag string) {
	t.Helper()
	cur := s.Instance()
	if err := sched.Validate(cur); err != nil {
		t.Fatalf("%s: stale or invalid schedule: %v", tag, err)
	}
	if got := sched.Makespan(cur); got != st.Makespan {
		t.Fatalf("%s: reported makespan %d, schedule has %d", tag, st.Makespan, got)
	}
	held, heldMS, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if heldMS != st.Makespan || len(held.Assignment) != cur.N() {
		t.Fatalf("%s: session state (%d jobs, ms %d) does not match accepted result (%d jobs, ms %d)",
			tag, len(held.Assignment), heldMS, cur.N(), st.Makespan)
	}
	coldMS := coldSolve(t, cur, eps)
	if float64(st.Makespan) > (1+eps)*float64(coldMS)+1e-9 {
		t.Fatalf("%s: warm makespan %d exceeds (1+eps) of cold %d (path %v, LB %d)",
			tag, st.Makespan, coldMS, st.Path, st.LowerBound)
	}
	// The certified bound must stay a true lower bound: no schedule beats
	// OPT, and coldMS >= OPT >= LowerBound.
	if st.LowerBound > coldMS {
		t.Fatalf("%s: certified LB %d exceeds a cold solve's makespan %d", tag, st.LowerBound, coldMS)
	}
}

// TestSessionDifferentialAgainstExactOptima mirrors the sparse pipeline's
// differential anchor: across all six families and eps in {0.5, 0.2, 0.1},
// every warm re-solve after a mutation stays within (1+eps) of the certified
// branch-and-bound optimum of the mutated instance.
func TestSessionDifferentialAgainstExactOptima(t *testing.T) {
	for _, eps := range []float64{0.5, 0.2, 0.1} {
		for _, fam := range workload.Families {
			m, n := 3, 12
			if fam == workload.Um_2m1 {
				// Same carve-out as the sparse anchor: U(m, 2m-1) sizes leave
				// OPT comparable to k for small m at eps=0.1, where integer
				// rounding's additive slop exceeds the multiplicative band;
				// m=12 keeps the strict ratio certifiable.
				m = 12
				n = 2*m + 1
			}
			in := workload.MustGenerate(workload.Spec{Family: fam, M: m, N: n, Seed: 11})
			lo, hi, err := fam.Bounds(m, n)
			if err != nil {
				t.Fatal(err)
			}
			mid := pcmax.Time((lo + hi) / 2)
			if mid < 1 {
				mid = 1
			}

			opts := solver.DefaultSessionOptions()
			opts.PTAS.Epsilon = eps
			s, err := solver.NewSession(opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Solve(context.Background(), in); err != nil {
				t.Fatal(err)
			}

			steps := []struct {
				name   string
				add    []pcmax.Time
				remove []int
			}{
				{"add1", []pcmax.Time{mid}, nil},
				{"swap1", []pcmax.Time{mid + 1}, []int{0}},
				{"remove2", nil, []int{1, 2}},
			}
			for _, step := range steps {
				sched, st, err := s.SolveDelta(context.Background(), step.add, step.remove)
				if err != nil {
					t.Fatalf("%v eps=%v %s: %v", fam, eps, step.name, err)
				}
				cur := s.Instance()
				if err := sched.Validate(cur); err != nil {
					t.Fatalf("%v eps=%v %s: %v", fam, eps, step.name, err)
				}
				_, res, err := solver.Exact(context.Background(), cur, solver.ExactOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Optimal {
					t.Fatalf("%v eps=%v %s: exact did not certify", fam, eps, step.name)
				}
				if st.Makespan < res.Makespan {
					t.Fatalf("%v eps=%v %s: warm makespan %d below optimum %d",
						fam, eps, step.name, st.Makespan, res.Makespan)
				}
				if float64(st.Makespan) > (1+eps)*float64(res.Makespan)+1e-9 {
					t.Fatalf("%v eps=%v %s: warm makespan %d exceeds (1+eps)*opt = %.1f (path %v, LB %d)",
						fam, eps, step.name, st.Makespan, (1+eps)*float64(res.Makespan), st.Path, st.LowerBound)
				}
				if st.LowerBound > res.Makespan {
					t.Fatalf("%v eps=%v %s: certified LB %d above optimum %d",
						fam, eps, step.name, st.LowerBound, res.Makespan)
				}
			}
		}
	}
}

// TestSessionAdversarialStreams drives the session through the mutation
// patterns most likely to break warm-start bookkeeping — remove-then-readd,
// drain-to-empty-and-regrow, and 10x growth — checking the warm-vs-cold
// certificate after every accepted delta.
func TestSessionAdversarialStreams(t *testing.T) {
	const eps = 0.2
	for _, fam := range []workload.Family{workload.U1_100, workload.U95_105} {
		in := workload.MustGenerate(workload.Spec{Family: fam, M: 5, N: 40, Seed: 17})
		newSession := func() *solver.Session {
			opts := solver.DefaultSessionOptions()
			opts.PTAS.Epsilon = eps
			s, err := solver.NewSession(opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Solve(context.Background(), in); err != nil {
				t.Fatal(err)
			}
			return s
		}

		t.Run(fam.String()+"/remove-then-readd", func(t *testing.T) {
			s := newSession()
			removedTimes := []pcmax.Time{in.Times[0], in.Times[7], in.Times[13]}
			sched, st, err := s.SolveDelta(context.Background(), nil, []int{0, 7, 13})
			if err != nil {
				t.Fatal(err)
			}
			checkWarmResult(t, s, sched, st, eps, "remove")
			sched, st, err = s.SolveDelta(context.Background(), removedTimes, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkWarmResult(t, s, sched, st, eps, "readd")
			// Re-adding the exact jobs restores the original multiset; the
			// session must match a cold solve's quality on it (checked
			// above) and its instance must have the original total.
			if got := s.Instance().TotalTime(); got != in.TotalTime() {
				t.Fatalf("readd total %d, want %d", got, in.TotalTime())
			}
		})

		t.Run(fam.String()+"/drain-to-empty", func(t *testing.T) {
			s := newSession()
			// Drain in three unequal waves, then regrow.
			waves := [][]int{make([]int, 15), make([]int, 20), make([]int, 5)}
			next := 0
			for w := range waves {
				cur := s.Instance().N()
				for i := range waves[w] {
					waves[w][i] = cur - 1 - i // remove from the tail
				}
				next += len(waves[w])
				sched, st, err := s.SolveDelta(context.Background(), nil, waves[w])
				if err != nil {
					t.Fatalf("wave %d: %v", w, err)
				}
				checkWarmResult(t, s, sched, st, eps, "drain")
			}
			if n := s.Instance().N(); n != 0 {
				t.Fatalf("drained session still has %d jobs", n)
			}
			sched, st, err := s.SolveDelta(context.Background(), in.Times[:10], nil)
			if err != nil {
				t.Fatal(err)
			}
			checkWarmResult(t, s, sched, st, eps, "regrow")
		})

		t.Run(fam.String()+"/grow-10x", func(t *testing.T) {
			s := newSession()
			lo, hi, err := fam.Bounds(5, 40)
			if err != nil {
				t.Fatal(err)
			}
			// Ten waves of 36 jobs each take n from 40 to 400. Times sweep
			// the family's band deterministically.
			for w := 0; w < 10; w++ {
				batch := make([]pcmax.Time, 36)
				for i := range batch {
					batch[i] = pcmax.Time(lo + int64(w*36+i)%(hi-lo+1))
				}
				sched, st, err := s.SolveDelta(context.Background(), batch, nil)
				if err != nil {
					t.Fatalf("wave %d: %v", w, err)
				}
				checkWarmResult(t, s, sched, st, eps, "grow")
			}
			if n := s.Instance().N(); n != 400 {
				t.Fatalf("grown session has %d jobs, want 400", n)
			}
		})
	}
}

// TestSessionConcurrentUse hammers one session from mutators and readers
// concurrently; run under -race (scripts/check.sh does) to verify the
// locking, and check afterwards that the surviving state is consistent.
func TestSessionConcurrentUse(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{Family: workload.U1_100, M: 5, N: 60, Seed: 23})
	s, err := solver.NewSession(solver.DefaultSessionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				// Swap one job for another; index 0 always exists because
				// every delta is size-preserving.
				if _, _, err := s.SolveDelta(context.Background(), []pcmax.Time{pcmax.Time(1 + (g*5+i)%100)}, []int{0}); err != nil {
					panic(err)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if sched, ms, err := s.Schedule(); err == nil {
					if len(sched.Assignment) == 0 || ms <= 0 {
						panic("inconsistent snapshot")
					}
				}
				_ = s.Counters()
				_ = s.LowerBound()
			}
		}()
	}
	wg.Wait()
	cur := s.Instance()
	sched, ms, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(cur); err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(cur); got != ms {
		t.Fatalf("final state makespan %d, reported %d", got, ms)
	}
	if c := s.Counters(); c.Solves != 21 {
		t.Fatalf("counters = %+v, want 21 solves", c)
	}
}
