package pcmax_test

import (
	"fmt"
	"os"

	"repro/pcmax"
)

func ExampleNewInstance() {
	in, err := pcmax.NewInstance(2, []pcmax.Time{5, 4, 3, 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(in.N(), "jobs on", in.M, "machines, lower bound", in.LowerBound())
	// Output: 4 jobs on 2 machines, lower bound 7
}

func ExampleInstance_LowerBound() {
	// The bound is the larger of the average load and the longest job.
	byAverage := &pcmax.Instance{M: 2, Times: []pcmax.Time{5, 5, 4}}
	byLongest := &pcmax.Instance{M: 2, Times: []pcmax.Time{9, 1, 1}}
	fmt.Println(byAverage.LowerBound(), byLongest.LowerBound())
	// Output: 7 9
}

func ExampleSchedule_Makespan() {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{5, 4, 3}}
	sched := &pcmax.Schedule{M: 2, Assignment: []int{0, 1, 1}}
	fmt.Println(sched.Makespan(in))
	// Output: 7
}

func ExampleWriteText() {
	in := &pcmax.Instance{M: 2, Times: []pcmax.Time{5, 4, 3}}
	if err := pcmax.WriteText(os.Stdout, in); err != nil {
		panic(err)
	}
	// Output:
	// m 2
	// 5 4 3
}
