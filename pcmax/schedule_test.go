package pcmax

import (
	"errors"
	"strings"
	"testing"
)

func sampleInstance() *Instance {
	return &Instance{M: 3, Times: []Time{7, 5, 3, 2}}
}

func TestNewScheduleUnassigned(t *testing.T) {
	s := NewSchedule(3, 4)
	for j, mi := range s.Assignment {
		if mi != -1 {
			t.Fatalf("job %d starts assigned to %d", j, mi)
		}
	}
}

func TestLoadsAndMakespan(t *testing.T) {
	in := sampleInstance()
	s := NewSchedule(3, 4)
	s.Assignment = []int{0, 1, 1, 2}
	loads := s.Loads(in)
	if loads[0] != 7 || loads[1] != 8 || loads[2] != 2 {
		t.Fatalf("Loads = %v", loads)
	}
	if got := s.Makespan(in); got != 8 {
		t.Fatalf("Makespan = %d, want 8", got)
	}
}

func TestLoadsIgnoreUnassigned(t *testing.T) {
	in := sampleInstance()
	s := NewSchedule(3, 4)
	s.Assignment[1] = 0
	loads := s.Loads(in)
	if loads[0] != 5 || loads[1] != 0 || loads[2] != 0 {
		t.Fatalf("Loads = %v", loads)
	}
}

func TestValidateCompleteSchedule(t *testing.T) {
	in := sampleInstance()
	s := &Schedule{M: 3, Assignment: []int{0, 1, 2, 0}}
	if err := s.Validate(in); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestValidateRejectsUnassigned(t *testing.T) {
	in := sampleInstance()
	s := NewSchedule(3, 4)
	if err := s.Validate(in); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("want ErrBadAssignment, got %v", err)
	}
}

func TestValidateRejectsOutOfRangeMachine(t *testing.T) {
	in := sampleInstance()
	s := &Schedule{M: 3, Assignment: []int{0, 1, 3, 0}}
	if err := s.Validate(in); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("want ErrBadAssignment, got %v", err)
	}
}

func TestValidateRejectsJobCountMismatch(t *testing.T) {
	in := sampleInstance()
	s := &Schedule{M: 3, Assignment: []int{0, 1}}
	if err := s.Validate(in); !errors.Is(err, ErrWrongJobCount) {
		t.Fatalf("want ErrWrongJobCount, got %v", err)
	}
}

func TestValidateRejectsMachineCountMismatch(t *testing.T) {
	in := sampleInstance()
	s := &Schedule{M: 5, Assignment: []int{0, 1, 2, 0}}
	if err := s.Validate(in); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("want ErrBadAssignment, got %v", err)
	}
}

func TestValidateNilSchedule(t *testing.T) {
	var s *Schedule
	if err := s.Validate(sampleInstance()); !errors.Is(err, ErrNilSchedule) {
		t.Fatalf("want ErrNilSchedule, got %v", err)
	}
}

func TestMachineJobsGrouping(t *testing.T) {
	s := &Schedule{M: 2, Assignment: []int{1, 0, 1, 1}}
	groups := s.MachineJobs()
	if len(groups[0]) != 1 || groups[0][0] != 1 {
		t.Fatalf("machine 0 jobs = %v", groups[0])
	}
	if len(groups[1]) != 3 || groups[1][0] != 0 || groups[1][1] != 2 || groups[1][2] != 3 {
		t.Fatalf("machine 1 jobs = %v", groups[1])
	}
}

func TestScheduleCloneIndependence(t *testing.T) {
	s := &Schedule{M: 2, Assignment: []int{0, 1}}
	cp := s.Clone()
	cp.Assignment[0] = 1
	if s.Assignment[0] != 0 {
		t.Fatal("Clone shares assignment slice")
	}
}

func TestRatio(t *testing.T) {
	in := sampleInstance()
	s := &Schedule{M: 3, Assignment: []int{0, 1, 1, 2}} // makespan 8
	if got := s.Ratio(in, 8); got != 1.0 {
		t.Fatalf("Ratio = %v, want 1.0", got)
	}
	if got := s.Ratio(in, 4); got != 2.0 {
		t.Fatalf("Ratio = %v, want 2.0", got)
	}
	if got := s.Ratio(in, 0); got != 0 {
		t.Fatalf("Ratio with opt=0 = %v, want 0", got)
	}
}

func TestGanttMentionsEveryMachineAndMakespan(t *testing.T) {
	in := sampleInstance()
	s := &Schedule{M: 3, Assignment: []int{0, 1, 1, 2}}
	g := s.Gantt(in)
	for _, want := range []string{"machine 0", "machine 1", "machine 2", "makespan 8"} {
		if !strings.Contains(g, want) {
			t.Fatalf("Gantt output missing %q:\n%s", want, g)
		}
	}
}
