package pcmax

import (
	"errors"
	"strings"
	"testing"
)

func TestVariantClassifier(t *testing.T) {
	cases := []struct {
		name string
		in   Instance
		want Variant
	}{
		{"plain", Instance{M: 2, Times: []Time{3, 4}}, Plain},
		{"zero sections stay plain", Instance{M: 2, Times: []Time{3, 4},
			Release: []Time{0, 0}, Setup: []Time{0, 0}, Windows: [][]Window{nil, nil}}, Plain},
		{"release", Instance{M: 2, Times: []Time{3, 4}, Release: []Time{0, 1}}, ReleaseTimes},
		{"setup", Instance{M: 2, Times: []Time{3, 4}, Setup: []Time{1, 0}}, SetupTimes},
		{"windows", Instance{M: 2, Times: []Time{3, 4},
			Windows: [][]Window{{{Start: 0, End: 10}}, nil}}, TimeRestricted},
		{"all", Instance{M: 1, Times: []Time{3}, Release: []Time{2}, Setup: []Time{1},
			Windows: [][]Window{{{Start: 0, End: 100}}}}, ReleaseTimes | SetupTimes | TimeRestricted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.in.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := tc.in.Variant(); got != tc.want {
				t.Fatalf("Variant() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestVariantStringAndLetters(t *testing.T) {
	cases := []struct {
		v       Variant
		str     string
		letters string
	}{
		{Plain, "plain", "plain"},
		{ReleaseTimes, "release", "r"},
		{SetupTimes, "setup", "s"},
		{TimeRestricted, "windows", "w"},
		{ReleaseTimes | SetupTimes, "release+setup", "rs"},
		{AllVariants, "release+setup+windows", "rsw"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.str {
			t.Errorf("%v.String() = %q, want %q", uint8(tc.v), got, tc.str)
		}
		if got := tc.v.Letters(); got != tc.letters {
			t.Errorf("Letters() = %q, want %q", got, tc.letters)
		}
		parsed, err := ParseVariant(tc.letters)
		if err != nil || parsed != tc.v {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", tc.letters, parsed, err, tc.v)
		}
		parsed, err = ParseVariant(tc.str)
		if err != nil || parsed != tc.v {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", tc.str, parsed, err, tc.v)
		}
	}
	if _, err := ParseVariant("bogus"); err == nil {
		t.Error("ParseVariant accepted bogus")
	}
}

func TestValidateVariantSections(t *testing.T) {
	base := func() *Instance { return &Instance{M: 2, Times: []Time{3, 4, 5}} }

	in := base()
	in.Release = []Time{1, 2} // 2 values for 3 jobs
	if err := in.Validate(); !errors.Is(err, ErrBadRelease) {
		t.Errorf("short release vector: got %v", err)
	}
	in = base()
	in.Release = []Time{1, -1, 0}
	if err := in.Validate(); !errors.Is(err, ErrBadRelease) {
		t.Errorf("negative release: got %v", err)
	}
	in = base()
	in.Setup = []Time{1} // 1 value for 2 machines
	if err := in.Validate(); !errors.Is(err, ErrBadSetup) {
		t.Errorf("short setup vector: got %v", err)
	}
	in = base()
	in.Windows = [][]Window{{{Start: 5, End: 5}}, nil}
	if err := in.Validate(); !errors.Is(err, ErrBadWindow) {
		t.Errorf("empty window: got %v", err)
	}
	in = base()
	in.Windows = [][]Window{{{Start: 0, End: 10}, {Start: 5, End: 20}}, nil}
	if err := in.Validate(); !errors.Is(err, ErrBadWindow) {
		t.Errorf("overlapping windows: got %v", err)
	}
	in = base()
	in.Windows = [][]Window{{{Start: 0, End: 10}}} // 1 list for 2 machines
	if err := in.Validate(); !errors.Is(err, ErrBadWindow) {
		t.Errorf("short window list: got %v", err)
	}
}

func TestEarliestStart(t *testing.T) {
	in := &Instance{M: 2, Times: []Time{1},
		Windows: [][]Window{{{Start: 2, End: 6}, {Start: 10, End: 13}}, nil}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		mi       int
		est, dur Time
		start    Time
		ok       bool
	}{
		{0, 0, 3, 2, true},   // pulled forward to the first window
		{0, 3, 3, 3, true},   // fits at est inside the first window
		{0, 4, 3, 10, true},  // too late for window one, jumps to window two
		{0, 0, 5, 10, false}, // fits nowhere: w1 holds 4, w2 holds 3
		{0, 11, 3, 0, false}, // est past the last viable start
		{1, 7, 99, 7, true},  // unrestricted machine: est verbatim
	}
	for i, tc := range cases {
		start, ok := in.EarliestStart(tc.mi, tc.est, tc.dur)
		if ok != tc.ok || (ok && start != tc.start) {
			t.Errorf("case %d: EarliestStart(%d, %d, %d) = (%d, %v), want (%d, %v)",
				i, tc.mi, tc.est, tc.dur, start, ok, tc.start, tc.ok)
		}
	}
	// Degenerate: dur 5 does fit window two? 10+5=15 > 13, and window one
	// 2+5=7 > 6 — the table's ok=false case above is what we assert.
	if _, ok := in.EarliestStart(0, 0, 4); !ok {
		t.Error("dur 4 must fit window one")
	}
}

func TestCompletionsReleaseAndSetup(t *testing.T) {
	// One machine, setup 2, jobs released at 0 and 10.
	in := &Instance{M: 1, Times: []Time{3, 3}, Release: []Time{0, 10}, Setup: []Time{2}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	s := &Schedule{M: 1, Assignment: []int{0, 0}}
	done, err := s.Completions(in)
	if err != nil {
		t.Fatal(err)
	}
	// Job 0: starts 0, setup+t = 5. Job 1: released 10, done 15.
	if done[0] != 15 {
		t.Fatalf("done = %v, want [15]", done)
	}
	if ms := s.Makespan(in); ms != 15 {
		t.Fatalf("makespan %d, want 15", ms)
	}
	// Loads exclude setups and release gaps.
	if l := s.Loads(in)[0]; l != 6 {
		t.Fatalf("load %d, want 6", l)
	}
}

func TestCompletionsOrderMatters(t *testing.T) {
	// Windows [0,5) and [10,13): running job 1 (t=4) first leaves [4,5) and
	// the second window for job 0 (t=3) — feasible, done 13. Running job 0
	// first fills [0,3) and job 1 then fits neither [3,5) nor the 3-long
	// second window: the same assignment is infeasible in that order.
	in := &Instance{M: 1, Times: []Time{3, 4},
		Windows: [][]Window{{{Start: 0, End: 5}, {Start: 10, End: 13}}}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	s := &Schedule{M: 1, Assignment: []int{0, 0}, Order: []int{1, 0}} // 4 first
	done, err := s.Completions(in)
	if err != nil || done[0] != 13 {
		t.Fatalf("order 4,3: done=%v err=%v, want [13]", done, err)
	}
	if ms := s.Makespan(in); ms != 13 {
		t.Fatalf("makespan with order = %d, want 13", ms)
	}
	s2 := &Schedule{M: 1, Assignment: []int{0, 0}, Order: []int{0, 1}} // 3 first
	if _, err := s2.Completions(in); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("order 3,4: want ErrInfeasible, got %v", err)
	}
}

func TestCompletionsInfeasible(t *testing.T) {
	in := &Instance{M: 1, Times: []Time{7},
		Windows: [][]Window{{{Start: 0, End: 5}}}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	s := &Schedule{M: 1, Assignment: []int{0}}
	if _, err := s.Completions(in); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if err := s.Feasible(in); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Feasible: want ErrInfeasible, got %v", err)
	}
	if ms := s.Makespan(in); ms != Infeasible {
		t.Fatalf("makespan = %d, want the Infeasible sentinel", ms)
	}
}

func TestCanonicalSequenceSortsByRelease(t *testing.T) {
	// Without an explicit Order, jobs on a machine run in release order.
	in := &Instance{M: 1, Times: []Time{5, 5}, Release: []Time{10, 0}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	s := &Schedule{M: 1, Assignment: []int{0, 0}}
	done, err := s.Completions(in)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 (r=0) first: done 5; job 0 (r=10) next: done 15. Index order
	// would idle until 10 and finish at 20.
	if done[0] != 15 {
		t.Fatalf("done = %v, want [15]", done)
	}
}

func TestScheduleValidateOrderPermutation(t *testing.T) {
	in := &Instance{M: 1, Times: []Time{1, 2}}
	s := &Schedule{M: 1, Assignment: []int{0, 0}, Order: []int{0, 0}}
	if err := s.Validate(in); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("duplicate order entry: got %v", err)
	}
	s.Order = []int{1}
	if err := s.Validate(in); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("short order: got %v", err)
	}
	s.Order = []int{1, 0}
	if err := s.Validate(in); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	s.Order = nil
	if err := s.Validate(in); err != nil {
		t.Fatalf("nil order rejected: %v", err)
	}
}

func TestCloneCopiesVariantSections(t *testing.T) {
	in := &Instance{M: 2, Times: []Time{3, 4}, Release: []Time{1, 0}, Setup: []Time{0, 2},
		Windows: [][]Window{{{Start: 0, End: 50}}, {{Start: 5, End: 60}}}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	cl := in.Clone()
	cl.Release[0] = 99
	cl.Setup[1] = 99
	cl.Windows[0][0].End = 99
	if in.Release[0] != 1 || in.Setup[1] != 2 || in.Windows[0][0].End != 50 {
		t.Fatal("Clone shares variant section backing arrays")
	}
	s := &Schedule{M: 2, Assignment: []int{0, 1}, Order: []int{1, 0}}
	sc := s.Clone()
	sc.Order[0] = 0
	sc.Order[1] = 1
	if s.Order[0] != 1 {
		t.Fatal("Schedule.Clone shares Order")
	}
}

func TestHorizonHintCoversWindows(t *testing.T) {
	in := &Instance{M: 1, Times: []Time{2},
		Windows: [][]Window{{{Start: 1000, End: 2000}}}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if h := in.HorizonHint(); h < 2000 {
		t.Fatalf("horizon %d does not reach the last window end", h)
	}
}

func TestGanttVariantListsCompletions(t *testing.T) {
	in := &Instance{M: 1, Times: []Time{3}, Setup: []Time{2}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	s := &Schedule{M: 1, Assignment: []int{0}}
	g := s.Gantt(in)
	if !strings.Contains(g, "done") || !strings.Contains(g, "makespan 5") {
		t.Fatalf("variant gantt missing done column or makespan:\n%s", g)
	}
}
