package pcmax

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file holds the variant layer of the instance model: optional per-job
// release times, machine-dependent setup times and per-machine availability
// windows (time restrictions), the Variant classifier over them, and the
// completion-time semantics that extend Makespan to the richer models.
//
// Everything is strictly additive: an instance with none of the optional
// fields set is a plain P||Cmax instance and every plain code path is
// unchanged bit for bit.

// Variant is a bitmask classifying which optional model features an instance
// uses. Plain (the zero value) is classic P||Cmax. Solvers advertise the set
// of feature bits they support; registry dispatch rejects instances whose
// variant has bits outside an algorithm's capability set.
type Variant uint8

const (
	// Plain is P||Cmax: no releases, no setups, no windows.
	Plain Variant = 0
	// ReleaseTimes marks per-job release times r_j > 0 (P|r_j|Cmax).
	ReleaseTimes Variant = 1 << iota
	// SetupTimes marks machine-dependent setup times s_i > 0: machine i
	// spends s_i immediately before every job it runs (P|s_i|Cmax).
	SetupTimes
	// TimeRestricted marks per-machine availability windows: a restricted
	// machine may only run jobs inside its windows, and a job (with its
	// setup) must fit entirely within one window.
	TimeRestricted
)

// AllVariants is the capability set of a solver that handles every model
// feature the instance core can express.
const AllVariants = ReleaseTimes | SetupTimes | TimeRestricted

// Has reports whether v includes every feature bit of f.
func (v Variant) Has(f Variant) bool { return v&f == f }

// String renders "plain" or the active feature names joined by "+", e.g.
// "release+windows".
func (v Variant) String() string {
	if v == Plain {
		return "plain"
	}
	var parts []string
	if v.Has(ReleaseTimes) {
		parts = append(parts, "release")
	}
	if v.Has(SetupTimes) {
		parts = append(parts, "setup")
	}
	if v.Has(TimeRestricted) {
		parts = append(parts, "windows")
	}
	if rest := v &^ AllVariants; rest != 0 {
		parts = append(parts, fmt.Sprintf("Variant(%#x)", uint8(rest)))
	}
	return strings.Join(parts, "+")
}

// Letters renders the compact letter form used by instance headers and CLI
// flags: "plain", or a combination of 'r', 's' and 'w'. ParseVariant inverts
// it.
func (v Variant) Letters() string {
	if v == Plain {
		return "plain"
	}
	var b strings.Builder
	if v.Has(ReleaseTimes) {
		b.WriteByte('r')
	}
	if v.Has(SetupTimes) {
		b.WriteByte('s')
	}
	if v.Has(TimeRestricted) {
		b.WriteByte('w')
	}
	return b.String()
}

// ParseVariant inverts String. It also accepts the compact letter form used
// by instance headers and CLI flags: any combination of 'r' (release),
// 's' (setup) and 'w' (windows), e.g. "rs" or "w"; "plain" and "" are Plain.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "", "plain", "Plain":
		return Plain, nil
	}
	var v Variant
	for _, part := range strings.Split(s, "+") {
		switch part {
		case "release", "r_j":
			v |= ReleaseTimes
		case "setup", "s_i":
			v |= SetupTimes
		case "windows", "tr":
			v |= TimeRestricted
		default:
			// Compact letter form: every rune must be one of r/s/w.
			for _, c := range part {
				switch c {
				case 'r':
					v |= ReleaseTimes
				case 's':
					v |= SetupTimes
				case 'w':
					v |= TimeRestricted
				default:
					return 0, fmt.Errorf("pcmax: unknown variant %q", s)
				}
			}
			if part == "" {
				return 0, fmt.Errorf("pcmax: unknown variant %q", s)
			}
		}
	}
	return v, nil
}

// Window is one availability interval of a machine, closed-open: the machine
// may run work during [Start, End).
type Window struct {
	Start Time `json:"start"`
	End   Time `json:"end"`
}

// Len returns the window's capacity End-Start.
func (w Window) Len() Time { return w.End - w.Start }

// Infeasible is the makespan reported for a schedule that cannot be realized
// under the instance's variant semantics (a job does not fit into any
// availability window at its position in the machine sequence). Use
// Schedule.Feasible or Schedule.Completions for the structured error.
const Infeasible = Time(math.MaxInt64)

// Variant validation errors.
var (
	ErrBadRelease = fmt.Errorf("pcmax: release times must cover every job and be non-negative")
	ErrBadSetup   = fmt.Errorf("pcmax: setup times must cover every machine and be non-negative")
	ErrBadWindow  = fmt.Errorf("pcmax: availability windows must be well-formed, sorted and disjoint")
	ErrBadOrder   = fmt.Errorf("pcmax: schedule order must be a permutation of the job indices")
	ErrInfeasible = fmt.Errorf("pcmax: schedule is infeasible under the instance's availability windows")
)

// Variant classifies the instance by the optional features it actually uses:
// all-zero release or setup sections and empty window lists do not set their
// bit, so such instances still dispatch to every plain solver.
func (in *Instance) Variant() Variant {
	var v Variant
	for _, r := range in.Release {
		if r > 0 {
			v |= ReleaseTimes
			break
		}
	}
	for _, s := range in.Setup {
		if s > 0 {
			v |= SetupTimes
			break
		}
	}
	for _, ws := range in.Windows {
		if len(ws) > 0 {
			v |= TimeRestricted
			break
		}
	}
	return v
}

// validateVariant checks the optional sections; it is a no-op on plain
// instances.
func (in *Instance) validateVariant() error {
	if len(in.Release) != 0 && len(in.Release) != len(in.Times) {
		return fmt.Errorf("%w (have %d values for %d jobs)", ErrBadRelease, len(in.Release), len(in.Times))
	}
	for j, r := range in.Release {
		if r < 0 || r > MaxTimeValue {
			return fmt.Errorf("%w (job %d has r=%d)", ErrBadRelease, j, r)
		}
	}
	if len(in.Setup) != 0 && len(in.Setup) != in.M {
		return fmt.Errorf("%w (have %d values for %d machines)", ErrBadSetup, len(in.Setup), in.M)
	}
	for i, s := range in.Setup {
		if s < 0 || s > MaxTimeValue {
			return fmt.Errorf("%w (machine %d has s=%d)", ErrBadSetup, i, s)
		}
	}
	if len(in.Windows) != 0 && len(in.Windows) != in.M {
		return fmt.Errorf("%w (have %d lists for %d machines)", ErrBadWindow, len(in.Windows), in.M)
	}
	for i, ws := range in.Windows {
		for k, w := range ws {
			if w.Start < 0 || w.End <= w.Start || w.End > MaxTimeValue {
				return fmt.Errorf("%w (machine %d window %d is [%d,%d))", ErrBadWindow, i, k, w.Start, w.End)
			}
			if k > 0 && w.Start < ws[k-1].End {
				return fmt.Errorf("%w (machine %d windows %d and %d overlap or are unsorted)", ErrBadWindow, i, k-1, k)
			}
		}
	}
	return nil
}

// ReleaseTime returns job j's release time (0 when the instance has none).
func (in *Instance) ReleaseTime(j int) Time {
	if j < len(in.Release) {
		return in.Release[j]
	}
	return 0
}

// SetupTime returns machine i's per-job setup time (0 when the instance has
// none).
func (in *Instance) SetupTime(i int) Time {
	if i < len(in.Setup) {
		return in.Setup[i]
	}
	return 0
}

// Restricted reports whether machine i has availability windows.
func (in *Instance) Restricted(i int) bool {
	return i < len(in.Windows) && len(in.Windows[i]) > 0
}

// EarliestStart returns the earliest start time t >= est at which machine i
// can run an occupation of length dur without interruption: for an
// unrestricted machine that is est itself; for a restricted machine, the
// earliest position where [t, t+dur) fits entirely inside one availability
// window. ok is false when no window can hold the occupation at or after
// est. This is the single source of truth for window placement, shared by
// Schedule.Completions and every variant-capable solver.
func (in *Instance) EarliestStart(i int, est, dur Time) (start Time, ok bool) {
	if !in.Restricted(i) {
		return est, true
	}
	for _, w := range in.Windows[i] {
		t := est
		if w.Start > t {
			t = w.Start
		}
		if t+dur <= w.End {
			return t, true
		}
	}
	return 0, false
}

// HorizonHint returns a horizon large enough that feasibility within it
// implies feasibility at all: the later of the plain upper bound and the last
// availability window end. Solvers use it to bound bisection searches.
func (in *Instance) HorizonHint() Time {
	h := in.UpperBound()
	for _, r := range in.Release {
		if r+in.UpperBound() > h {
			h = r + in.UpperBound()
		}
	}
	for _, ws := range in.Windows {
		if len(ws) > 0 && ws[len(ws)-1].End > h {
			h = ws[len(ws)-1].End
		}
	}
	return h
}

// sequences returns the per-machine processing sequences of the schedule:
// the schedule's explicit Order when set, otherwise the canonical order
// (non-decreasing release time, ties by job index — the single-machine
// Cmax-optimal order for the release+setup variants). Unassigned jobs are
// skipped.
func (s *Schedule) sequences(in *Instance) [][]int {
	seq := make([][]int, s.M)
	if len(s.Order) > 0 {
		for _, j := range s.Order {
			if j < 0 || j >= len(s.Assignment) {
				continue
			}
			if mi := s.Assignment[j]; mi >= 0 && mi < s.M {
				seq[mi] = append(seq[mi], j)
			}
		}
		return seq
	}
	for j, mi := range s.Assignment {
		if mi >= 0 && mi < s.M {
			seq[mi] = append(seq[mi], j)
		}
	}
	if len(in.Release) > 0 {
		for mi := range seq {
			jobs := seq[mi]
			sort.SliceStable(jobs, func(a, b int) bool {
				ra, rb := in.ReleaseTime(jobs[a]), in.ReleaseTime(jobs[b])
				if ra != rb {
					return ra < rb
				}
				return jobs[a] < jobs[b]
			})
		}
	}
	return seq
}

// Completions returns the per-machine completion times of the schedule under
// the variant semantics: each machine runs its sequence (see Order) back to
// back, a job starting no earlier than its release time and, on a restricted
// machine, occupying setup+processing entirely inside one availability
// window. For plain instances this equals Loads. The error (matching
// ErrInfeasible) identifies the first job that fits no window.
func (s *Schedule) Completions(in *Instance) ([]Time, error) {
	if in.Variant() == Plain && len(s.Order) == 0 {
		return s.Loads(in), nil
	}
	done := make([]Time, s.M)
	for mi, jobs := range s.sequences(in) {
		setup := in.SetupTime(mi)
		var cur Time
		for _, j := range jobs {
			if j >= len(in.Times) {
				continue
			}
			est := cur
			if r := in.ReleaseTime(j); r > est {
				est = r
			}
			start, ok := in.EarliestStart(mi, est, setup+in.Times[j])
			if !ok {
				return nil, fmt.Errorf("%w (job %d, len %d+%d, on machine %d after t=%d)",
					ErrInfeasible, j, setup, in.Times[j], mi, est)
			}
			cur = start + setup + in.Times[j]
		}
		done[mi] = cur
	}
	return done, nil
}

// Feasible reports whether every assigned job can be realized under the
// variant semantics; the error matches ErrInfeasible when not. Plain
// schedules are always feasible.
func (s *Schedule) Feasible(in *Instance) error {
	_, err := s.Completions(in)
	return err
}

// variantMakespan is the non-plain arm of Makespan: the maximum machine
// completion time, or the Infeasible sentinel when a job fits no window.
func (s *Schedule) variantMakespan(in *Instance) Time {
	done, err := s.Completions(in)
	if err != nil {
		return Infeasible
	}
	var ms Time
	for _, c := range done {
		if c > ms {
			ms = c
		}
	}
	return ms
}
