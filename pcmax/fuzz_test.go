package pcmax

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzReadText drives the text parser with arbitrary streams and checks the
// format's core invariants on every accepted instance:
//
//  1. accepted instances validate (the parser never hands out a malformed
//     Instance), and
//  2. the write->reparse->write cycle is a fixed point: writing the parsed
//     instance, reading it back and writing again produces byte-identical
//     output, so WriteText is a canonical form for everything ReadText
//     accepts.
//
// The seed corpus covers the plain grammar and every optional section
// (variant declaration, release, setup and window lines, including wrapped
// multi-line sections).
func FuzzReadText(f *testing.F) {
	seeds := []string{
		"m 2\n5 3 7\n",
		"m 1\n5\n",
		"m 3 1 2 3\n",
		"# comment\nm 2\n\n5 3\n",
		"m 2\nvariant rs\nr 0 4\ns 1 0\n5 3\n",
		"m 2\nvariant rsw\nr 0 4\ns 1 0\nw 0 0 40\nw 1 2 10 15 60\n5 3\n",
		"m 2\nr 0 4\nr 1 2\n5 3 7 2\n",
		"m 1\nvariant w\nw 0 0 5 10 13\n3 4\n",
		"m 2\nvariant plain\n5 3\n",
		// Near-MaxInt64 and cap-boundary values: every accepted instance
		// must clear Validate's MaxTimeValue/MaxTotalTime caps, so these
		// exercise the overflow guards at the parse boundary.
		"m 1\n9223372036854775807\n",
		"m 1\n9223372036854775806 1\n",
		"m 2\n1125899906842624 1125899906842624\n",
		"m 1\n1125899906842625\n",
		"m 1\nvariant r\nr 0 9223372036854775807\n5\n",
		"m 1\nvariant w\nw 0 1 9223372036854775807\n5\n",
		"m 0\n\n",
		"m 2\nw 0 1\n5 3\n",
		"m 2\nvariant q\n5 3\n",
		"not an instance",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		in, err := ReadText(strings.NewReader(text))
		if err != nil {
			return // rejecting is always fine; not crashing is the point
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("ReadText accepted an invalid instance: %v\ninput: %q", verr, text)
		}
		var first bytes.Buffer
		if err := WriteText(&first, in); err != nil {
			t.Fatalf("WriteText failed on accepted instance: %v\ninput: %q", err, text)
		}
		back, err := ReadText(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("ReadText rejected WriteText output: %v\noutput: %q", err, first.String())
		}
		var second bytes.Buffer
		if err := WriteText(&second, back); err != nil {
			t.Fatalf("WriteText failed on reparsed instance: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write->reparse->write not a fixed point:\nfirst:  %q\nsecond: %q", first.String(), second.String())
		}
		if got, want := back.Variant(), in.Variant(); got != want {
			t.Fatalf("variant changed across round trip: %v -> %v", want, got)
		}
	})
}

// FuzzReadJSON mirrors FuzzReadText for the JSON format: every instance the
// reader accepts must validate (in particular, clear the MaxTimeValue and
// MaxTotalTime overflow caps), and marshal->reread->marshal must be a fixed
// point. The seed corpus covers the plain object, every optional section,
// malformed input, and cap-boundary values near MaxInt64.
func FuzzReadJSON(f *testing.F) {
	seeds := []string{
		`{"m":2,"times":[5,3,7]}`,
		`{"m":1,"times":[5]}`,
		`{"m":2,"times":[5,3],"release":[0,4],"setup":[1,0]}`,
		`{"m":2,"times":[5,3],"windows":[[{"start":0,"end":40}],[]]}`,
		`{"m":2,"times":[5,3],"release":[0,4],"setup":[1,0],"windows":[[{"start":0,"end":40}],[{"start":2,"end":10},{"start":15,"end":60}]]}`,
		`{"m":0,"times":[]}`,
		`{"m":2,"times":[5,-3]}`,
		// Cap-boundary and near-MaxInt64 values.
		`{"m":1,"times":[9223372036854775807]}`,
		`{"m":1,"times":[9223372036854775806,1]}`,
		`{"m":1,"times":[1125899906842624]}`,
		`{"m":1,"times":[1125899906842625]}`,
		`{"m":2,"times":[4611686018427387904,4611686018427387904,4611686018427387904]}`,
		`{"m":1,"times":[5],"release":[9223372036854775807]}`,
		`{"m":1,"times":[5],"windows":[[{"start":1,"end":9223372036854775807}]]}`,
		`not json`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejecting is always fine; not crashing is the point
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("ReadJSON accepted an invalid instance: %v\ninput: %q", verr, data)
		}
		first, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("Marshal failed on accepted instance: %v\ninput: %q", err, data)
		}
		back, err := ReadJSON(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("ReadJSON rejected Marshal output: %v\noutput: %q", err, first)
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("Marshal failed on reread instance: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("marshal->reread->marshal not a fixed point:\nfirst:  %q\nsecond: %q", first, second)
		}
		if got, want := back.Variant(), in.Variant(); got != want {
			t.Fatalf("variant changed across round trip: %v -> %v", want, got)
		}
	})
}
