package pcmax

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText drives the text parser with arbitrary streams and checks the
// format's core invariants on every accepted instance:
//
//  1. accepted instances validate (the parser never hands out a malformed
//     Instance), and
//  2. the write->reparse->write cycle is a fixed point: writing the parsed
//     instance, reading it back and writing again produces byte-identical
//     output, so WriteText is a canonical form for everything ReadText
//     accepts.
//
// The seed corpus covers the plain grammar and every optional section
// (variant declaration, release, setup and window lines, including wrapped
// multi-line sections).
func FuzzReadText(f *testing.F) {
	seeds := []string{
		"m 2\n5 3 7\n",
		"m 1\n5\n",
		"m 3 1 2 3\n",
		"# comment\nm 2\n\n5 3\n",
		"m 2\nvariant rs\nr 0 4\ns 1 0\n5 3\n",
		"m 2\nvariant rsw\nr 0 4\ns 1 0\nw 0 0 40\nw 1 2 10 15 60\n5 3\n",
		"m 2\nr 0 4\nr 1 2\n5 3 7 2\n",
		"m 1\nvariant w\nw 0 0 5 10 13\n3 4\n",
		"m 2\nvariant plain\n5 3\n",
		"m 0\n\n",
		"m 2\nw 0 1\n5 3\n",
		"m 2\nvariant q\n5 3\n",
		"not an instance",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		in, err := ReadText(strings.NewReader(text))
		if err != nil {
			return // rejecting is always fine; not crashing is the point
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("ReadText accepted an invalid instance: %v\ninput: %q", verr, text)
		}
		var first bytes.Buffer
		if err := WriteText(&first, in); err != nil {
			t.Fatalf("WriteText failed on accepted instance: %v\ninput: %q", err, text)
		}
		back, err := ReadText(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("ReadText rejected WriteText output: %v\noutput: %q", err, first.String())
		}
		var second bytes.Buffer
		if err := WriteText(&second, back); err != nil {
			t.Fatalf("WriteText failed on reparsed instance: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write->reparse->write not a fixed point:\nfirst:  %q\nsecond: %q", first.String(), second.String())
		}
		if got, want := back.Variant(), in.Variant(); got != want {
			t.Fatalf("variant changed across round trip: %v -> %v", want, got)
		}
	})
}
