package pcmax

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	in := &Instance{M: 4, Times: []Time{10, 7, 7, 5, 5, 4, 4, 3}}
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualInstances(t, in, got)
}

func TestTextRoundTripLongInstanceWraps(t *testing.T) {
	times := make([]Time, 100)
	for i := range times {
		times[i] = Time(i + 1)
	}
	in := &Instance{M: 7, Times: times}
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 3 {
		t.Fatalf("expected wrapped output, got %d lines", lines)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualInstances(t, in, got)
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header comment\n\nm 2\n# mid comment\n3 4\n\n5\n"
	in, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	assertEqualInstances(t, &Instance{M: 2, Times: []Time{3, 4, 5}}, in)
}

func TestReadTextTimesOnHeaderLine(t *testing.T) {
	in, err := ReadText(strings.NewReader("m 2 3 4 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	assertEqualInstances(t, &Instance{M: 2, Times: []Time{3, 4, 5}}, in)
}

func TestReadTextMissingHeader(t *testing.T) {
	_, err := ReadText(strings.NewReader("3 4 5\n"))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestReadTextEmptyStream(t *testing.T) {
	_, err := ReadText(strings.NewReader(""))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestReadTextBadMachineCount(t *testing.T) {
	_, err := ReadText(strings.NewReader("m two\n1 2\n"))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestReadTextBadTime(t *testing.T) {
	_, err := ReadText(strings.NewReader("m 2\n1 x 3\n"))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestReadTextRejectsInvalidInstance(t *testing.T) {
	// Parses fine but t=0 violates the model.
	_, err := ReadText(strings.NewReader("m 2\n1 0 3\n"))
	if !errors.Is(err, ErrNonPositiveTime) {
		t.Fatalf("want ErrNonPositiveTime, got %v", err)
	}
}

func TestWriteTextRejectsInvalidInstance(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, &Instance{M: 0, Times: []Time{1}}); !errors.Is(err, ErrNoMachines) {
		t.Fatalf("want ErrNoMachines, got %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := &Instance{M: 3, Times: []Time{9, 9, 1}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var got Instance
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	assertEqualInstances(t, in, &got)
}

func TestJSONRejectsInvalidInstance(t *testing.T) {
	var got Instance
	err := json.Unmarshal([]byte(`{"m":0,"times":[1]}`), &got)
	if !errors.Is(err, ErrNoMachines) {
		t.Fatalf("want ErrNoMachines, got %v", err)
	}
}

func TestJSONFieldNames(t *testing.T) {
	data, err := json.Marshal(&Instance{M: 2, Times: []Time{5}})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"m":2`) || !strings.Contains(s, `"times":[5]`) {
		t.Fatalf("unexpected JSON %s", s)
	}
}

func TestStringSummary(t *testing.T) {
	s := (&Instance{M: 2, Times: []Time{5, 3}}).String()
	for _, want := range []string{"m=2", "n=2", "sum=8", "max=5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestTextRoundTripProperty(t *testing.T) {
	f := func(mRaw uint8, raw []uint16) bool {
		in := &Instance{M: int(mRaw%20) + 1}
		for _, r := range raw {
			in.Times = append(in.Times, Time(r)+1)
		}
		if len(in.Times) == 0 {
			in.Times = []Time{1}
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, in); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		if err != nil {
			return false
		}
		if got.M != in.M || len(got.Times) != len(in.Times) {
			return false
		}
		for i := range in.Times {
			if got.Times[i] != in.Times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func assertEqualInstances(t *testing.T, want, got *Instance) {
	t.Helper()
	if got.M != want.M {
		t.Fatalf("m = %d, want %d", got.M, want.M)
	}
	if len(got.Times) != len(want.Times) {
		t.Fatalf("n = %d, want %d", len(got.Times), len(want.Times))
	}
	for i := range want.Times {
		if got.Times[i] != want.Times[i] {
			t.Fatalf("times[%d] = %d, want %d", i, got.Times[i], want.Times[i])
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := &Schedule{M: 3, Assignment: []int{0, 2, 1, -1}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Schedule
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.M != 3 || len(got.Assignment) != 4 {
		t.Fatalf("round trip: %+v", got)
	}
	for j := range s.Assignment {
		if got.Assignment[j] != s.Assignment[j] {
			t.Fatalf("assignment[%d] = %d", j, got.Assignment[j])
		}
	}
}

func TestScheduleJSONRejectsBadMachine(t *testing.T) {
	var got Schedule
	if err := json.Unmarshal([]byte(`{"m":2,"assignment":[0,5]}`), &got); err == nil {
		t.Fatal("want range error")
	}
	if err := json.Unmarshal([]byte(`{"m":0,"assignment":[]}`), &got); err == nil {
		t.Fatal("want m error")
	}
}

func TestScheduleJSONAllowsUnassigned(t *testing.T) {
	var got Schedule
	if err := json.Unmarshal([]byte(`{"m":2,"assignment":[-1,1]}`), &got); err != nil {
		t.Fatal(err)
	}
}
