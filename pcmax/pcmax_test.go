package pcmax

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewInstanceValid(t *testing.T) {
	in, err := NewInstance(3, []Time{5, 2, 9})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if in.M != 3 || in.N() != 3 {
		t.Fatalf("got m=%d n=%d", in.M, in.N())
	}
}

func TestNewInstanceCopiesTimes(t *testing.T) {
	times := []Time{5, 2, 9}
	in, err := NewInstance(2, times)
	if err != nil {
		t.Fatal(err)
	}
	times[0] = 999
	if in.Times[0] != 5 {
		t.Fatalf("instance aliases caller slice: %v", in.Times)
	}
}

func TestNewInstanceRejectsZeroMachines(t *testing.T) {
	if _, err := NewInstance(0, []Time{1}); !errors.Is(err, ErrNoMachines) {
		t.Fatalf("want ErrNoMachines, got %v", err)
	}
}

func TestNewInstanceRejectsNegativeMachines(t *testing.T) {
	if _, err := NewInstance(-4, []Time{1}); !errors.Is(err, ErrNoMachines) {
		t.Fatalf("want ErrNoMachines, got %v", err)
	}
}

func TestNewInstanceRejectsZeroTime(t *testing.T) {
	if _, err := NewInstance(1, []Time{4, 0, 2}); !errors.Is(err, ErrNonPositiveTime) {
		t.Fatalf("want ErrNonPositiveTime, got %v", err)
	}
}

func TestNewInstanceRejectsNegativeTime(t *testing.T) {
	if _, err := NewInstance(1, []Time{-7}); !errors.Is(err, ErrNonPositiveTime) {
		t.Fatalf("want ErrNonPositiveTime, got %v", err)
	}
}

func TestValidateNilInstance(t *testing.T) {
	var in *Instance
	if err := in.Validate(); !errors.Is(err, ErrNilInstance) {
		t.Fatalf("want ErrNilInstance, got %v", err)
	}
}

func TestEmptyInstanceIsValid(t *testing.T) {
	in := &Instance{M: 2}
	if err := in.Validate(); err != nil {
		t.Fatalf("zero-job instance should validate: %v", err)
	}
	if in.TotalTime() != 0 || in.MaxTime() != 0 {
		t.Fatalf("empty instance totals: sum=%d max=%d", in.TotalTime(), in.MaxTime())
	}
}

func TestTotalAndMaxTime(t *testing.T) {
	in := &Instance{M: 2, Times: []Time{4, 9, 1}}
	if got := in.TotalTime(); got != 14 {
		t.Fatalf("TotalTime = %d, want 14", got)
	}
	if got := in.MaxTime(); got != 9 {
		t.Fatalf("MaxTime = %d, want 9", got)
	}
}

func TestLowerBoundDominatedByMax(t *testing.T) {
	// sum/m = 12/3 = 4 but the longest job is 10.
	in := &Instance{M: 3, Times: []Time{10, 1, 1}}
	if got := in.LowerBound(); got != 10 {
		t.Fatalf("LowerBound = %d, want 10", got)
	}
}

func TestLowerBoundDominatedByAverage(t *testing.T) {
	// ceil(13/2) = 7 > max 5.
	in := &Instance{M: 2, Times: []Time{5, 5, 3}}
	if got := in.LowerBound(); got != 7 {
		t.Fatalf("LowerBound = %d, want 7", got)
	}
}

func TestUpperBoundFormula(t *testing.T) {
	// ceil(13/2) + 5 = 12, the paper's equation (2).
	in := &Instance{M: 2, Times: []Time{5, 5, 3}}
	if got := in.UpperBound(); got != 12 {
		t.Fatalf("UpperBound = %d, want 12", got)
	}
}

func TestBoundsOrderProperty(t *testing.T) {
	f := func(mRaw uint8, raw []uint16) bool {
		m := int(mRaw%8) + 1
		times := make([]Time, 0, len(raw))
		for _, r := range raw {
			times = append(times, Time(r%1000)+1)
		}
		in := &Instance{M: m, Times: times}
		return in.LowerBound() <= in.UpperBound()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundIsValidProperty(t *testing.T) {
	// Any schedule's makespan is at least LB: check against the degenerate
	// all-on-one-machine schedule and a round-robin schedule.
	f := func(mRaw uint8, raw []uint16) bool {
		m := int(mRaw%6) + 1
		times := make([]Time, 0, len(raw))
		for _, r := range raw {
			times = append(times, Time(r%500)+1)
		}
		in := &Instance{M: m, Times: times}
		rr := NewSchedule(m, len(times))
		for j := range times {
			rr.Assignment[j] = j % m
		}
		return rr.Makespan(in) >= in.LowerBound()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	in := &Instance{M: 2, Times: []Time{3, 4}}
	cp := in.Clone()
	cp.Times[0] = 100
	cp.M = 9
	if in.Times[0] != 3 || in.M != 2 {
		t.Fatalf("Clone shares state: %+v", in)
	}
}

func TestSortedIndexOrdersByTimeDesc(t *testing.T) {
	in := &Instance{M: 1, Times: []Time{3, 9, 1, 9, 5}}
	got := in.SortedIndex()
	want := []int{1, 3, 4, 0, 2} // 9(idx1), 9(idx3, tie by index), 5, 3, 1
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedIndex = %v, want %v", got, want)
		}
	}
}

func TestSortedIndexDoesNotMutate(t *testing.T) {
	in := &Instance{M: 1, Times: []Time{3, 9, 1}}
	in.SortedIndex()
	if in.Times[0] != 3 || in.Times[1] != 9 || in.Times[2] != 1 {
		t.Fatalf("SortedIndex mutated Times: %v", in.Times)
	}
}

func TestSortedIndexIsPermutationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		times := make([]Time, len(raw))
		for i, r := range raw {
			times[i] = Time(r) + 1
		}
		in := &Instance{M: 1, Times: times}
		idx := in.SortedIndex()
		if len(idx) != len(times) {
			return false
		}
		seen := make([]bool, len(times))
		prev := Time(math.MaxInt64)
		for _, j := range idx {
			if j < 0 || j >= len(times) || seen[j] {
				return false
			}
			seen[j] = true
			if times[j] > prev {
				return false
			}
			prev = times[j]
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
