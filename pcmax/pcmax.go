// Package pcmax defines the problem model for P||Cmax, the problem of
// scheduling n jobs with integer processing times on m parallel identical
// machines to minimize the makespan (the maximum machine completion time).
//
// The package holds only data types and pure helpers: instances, schedules,
// loads, makespans and validation. Algorithms live in package solver and its
// internal implementations.
package pcmax

import (
	"errors"
	"fmt"
	"sort"
)

// Time is the unit of processing time. The model follows the paper and
// requires all processing times to be positive integers.
type Time = int64

// Instance is a scheduling problem instance: M identical machines and one
// processing time per job. Job j is identified by its index in Times. The
// zero value of the three optional sections — release times, setup times and
// availability windows — is classic P||Cmax; see Variant for the classifier
// over them and variant.go for their makespan semantics.
type Instance struct {
	// M is the number of identical machines, m >= 1.
	M int
	// Times holds the processing time of each job, all > 0.
	Times []Time

	// Release optionally holds one release time per job (len 0 or len(Times),
	// all >= 0): job j may not start before Release[j].
	Release []Time
	// Setup optionally holds one machine-dependent setup time per machine
	// (len 0 or M, all >= 0): machine i spends Setup[i] immediately before
	// every job it runs.
	Setup []Time
	// Windows optionally holds per-machine availability windows (len 0 or M).
	// A machine with a non-empty list may only run work inside its windows;
	// a job together with its setup must fit entirely within one window. An
	// empty inner list leaves that machine unrestricted.
	Windows [][]Window
}

// Validation caps. Instances arrive from untrusted files, and everything
// downstream — bounds, bisection probes, DP table sizing — sums and scales
// processing times as int64. The caps make that arithmetic provably
// overflow-free: with every value at most MaxTimeValue and the running
// total at most MaxTotalTime, any sum the solvers form stays far inside
// the int64 range. The schedlint intoverflow analyzer checks exactly this:
// Validate's guards are what dominate the arithmetic reachable from the
// parse roots.
const (
	// MaxTimeValue caps every accepted time-like value (processing, release,
	// setup and window bounds).
	MaxTimeValue Time = 1 << 50
	// MaxTotalTime caps the sum of all processing times of an instance.
	MaxTotalTime Time = 1 << 60
	// MaxJobs caps the number of jobs an instance may carry.
	MaxJobs = 1 << 30
)

// Common validation errors.
var (
	ErrNoMachines      = errors.New("pcmax: instance needs at least one machine")
	ErrNonPositiveTime = errors.New("pcmax: job processing times must be positive")
	ErrNilInstance     = errors.New("pcmax: nil instance")
	ErrTimeTooLarge    = errors.New("pcmax: time value exceeds MaxTimeValue")
	ErrTotalTooLarge   = errors.New("pcmax: total processing time exceeds MaxTotalTime")
	ErrTooManyJobs     = errors.New("pcmax: instance exceeds MaxJobs jobs")
)

// NewInstance builds a validated instance. The job times are copied.
func NewInstance(m int, times []Time) (*Instance, error) {
	in := &Instance{M: m, Times: append([]Time(nil), times...)}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.Times) }

// Validate checks that the instance is well formed and within the
// documented caps: every time positive and at most MaxTimeValue, at most
// MaxJobs jobs, and a total of at most MaxTotalTime. The per-iteration
// cap checks dominate the running sum, so the accumulation is overflow-free
// by construction (MaxTotalTime + MaxTimeValue is far below MaxInt64).
func (in *Instance) Validate() error {
	if in == nil {
		return ErrNilInstance
	}
	if in.M < 1 {
		return fmt.Errorf("%w (m=%d)", ErrNoMachines, in.M)
	}
	if len(in.Times) > MaxJobs {
		return fmt.Errorf("%w (n=%d)", ErrTooManyJobs, len(in.Times))
	}
	var sum Time
	for j, t := range in.Times {
		if t <= 0 {
			return fmt.Errorf("%w (job %d has t=%d)", ErrNonPositiveTime, j, t)
		}
		if t > MaxTimeValue {
			return fmt.Errorf("%w (job %d has t=%d)", ErrTimeTooLarge, j, t)
		}
		sum += t
		if sum > MaxTotalTime {
			return fmt.Errorf("%w (first %d jobs already sum past %d)", ErrTotalTooLarge, j+1, Time(MaxTotalTime))
		}
	}
	return in.validateVariant()
}

// TotalTime returns the sum of all processing times.
func (in *Instance) TotalTime() Time {
	var sum Time
	for _, t := range in.Times {
		sum += t
	}
	return sum
}

// MaxTime returns the largest processing time, or 0 for an empty instance.
func (in *Instance) MaxTime() Time {
	var max Time
	for _, t := range in.Times {
		if t > max {
			max = t
		}
	}
	return max
}

// LowerBound returns the trivial lower bound on the optimal makespan used by
// the paper's equation (1) with the floor replaced by a ceiling (the ceiling
// is also a valid — and tighter — bound because machine loads are integers).
func (in *Instance) LowerBound() Time {
	if in.M < 1 {
		return 0
	}
	sum := in.TotalTime()
	lb := (sum + Time(in.M) - 1) / Time(in.M)
	if mx := in.MaxTime(); mx > lb {
		lb = mx
	}
	return lb
}

// UpperBound returns the paper's equation (2) upper bound on the optimal
// makespan: ceil(sum/m) + max t. Any list schedule fits within it.
func (in *Instance) UpperBound() Time {
	if in.M < 1 {
		return 0
	}
	sum := in.TotalTime()
	return (sum+Time(in.M)-1)/Time(in.M) + in.MaxTime()
}

// Clone returns a deep copy of the instance, including the optional variant
// sections.
func (in *Instance) Clone() *Instance {
	out := &Instance{M: in.M, Times: append([]Time(nil), in.Times...)}
	if in.Release != nil {
		out.Release = append([]Time(nil), in.Release...)
	}
	if in.Setup != nil {
		out.Setup = append([]Time(nil), in.Setup...)
	}
	if in.Windows != nil {
		out.Windows = make([][]Window, len(in.Windows))
		for i, ws := range in.Windows {
			if ws != nil {
				out.Windows[i] = append([]Window(nil), ws...)
			}
		}
	}
	return out
}

// SortedIndex returns job indices ordered by non-increasing processing time,
// breaking ties by job index for determinism. The instance is not modified.
func (in *Instance) SortedIndex() []int {
	idx := make([]int, len(in.Times))
	for j := range idx {
		idx[j] = j
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := in.Times[idx[a]], in.Times[idx[b]]
		if ta != tb {
			return ta > tb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// Schedule assigns every job of an instance to a machine.
// Assignment[j] is the machine index (0-based) that runs job j.
//
// Order optionally fixes the per-machine processing sequence: when set it
// must be a permutation of the job indices, and each machine runs its jobs
// in the order they appear in it. When nil, machines run their jobs in the
// canonical order (non-decreasing release time, ties by job index). Plain
// P||Cmax makespans are order-independent, so plain solvers leave Order nil;
// window-aware solvers set it to pin the packing they constructed.
type Schedule struct {
	M          int
	Assignment []int
	Order      []int
}

// NewSchedule returns an empty schedule for m machines and n jobs with every
// assignment set to -1 (unassigned).
func NewSchedule(m, n int) *Schedule {
	s := &Schedule{M: m, Assignment: make([]int, n)}
	for j := range s.Assignment {
		s.Assignment[j] = -1
	}
	return s
}

// Schedule validation errors.
var (
	ErrBadAssignment = errors.New("pcmax: schedule assigns a job to an invalid machine")
	ErrWrongJobCount = errors.New("pcmax: schedule has a different number of jobs than the instance")
	ErrNilSchedule   = errors.New("pcmax: nil schedule")
)

// Validate checks that the schedule is a complete, legal assignment for in.
func (s *Schedule) Validate(in *Instance) error {
	if s == nil {
		return ErrNilSchedule
	}
	if err := in.Validate(); err != nil {
		return err
	}
	if len(s.Assignment) != in.N() {
		return fmt.Errorf("%w (schedule %d, instance %d)", ErrWrongJobCount, len(s.Assignment), in.N())
	}
	if s.M != in.M {
		return fmt.Errorf("%w (schedule m=%d, instance m=%d)", ErrBadAssignment, s.M, in.M)
	}
	for j, mi := range s.Assignment {
		if mi < 0 || mi >= s.M {
			return fmt.Errorf("%w (job %d -> machine %d of %d)", ErrBadAssignment, j, mi, s.M)
		}
	}
	if len(s.Order) > 0 {
		if len(s.Order) != len(s.Assignment) {
			return fmt.Errorf("%w (order has %d entries for %d jobs)", ErrBadOrder, len(s.Order), len(s.Assignment))
		}
		seen := make([]bool, len(s.Assignment))
		for _, j := range s.Order {
			if j < 0 || j >= len(seen) || seen[j] {
				return fmt.Errorf("%w (entry %d)", ErrBadOrder, j)
			}
			seen[j] = true
		}
	}
	return nil
}

// Loads returns the total processing time assigned to each machine.
// Unassigned jobs (machine -1) are ignored. Setups and idle gaps are not
// included; see Completions for the variant-aware completion times.
func (s *Schedule) Loads(in *Instance) []Time {
	loads := make([]Time, s.M)
	for j, mi := range s.Assignment {
		if mi >= 0 && mi < s.M && j < len(in.Times) {
			loads[mi] += in.Times[j]
		}
	}
	return loads
}

// Makespan returns the maximum machine completion time of the schedule on
// in. On plain instances that is the maximum machine load; on variant
// instances completions follow the release/setup/window semantics of
// Completions, and an infeasible schedule (a job fits no window) reports the
// Infeasible sentinel.
func (s *Schedule) Makespan(in *Instance) Time {
	if in.Variant() != Plain {
		return s.variantMakespan(in)
	}
	var ms Time
	for _, l := range s.Loads(in) {
		if l > ms {
			ms = l
		}
	}
	return ms
}

// MachineJobs returns, per machine, the list of job indices assigned to it,
// each list in increasing job order.
func (s *Schedule) MachineJobs() [][]int {
	out := make([][]int, s.M)
	for j, mi := range s.Assignment {
		if mi >= 0 && mi < s.M {
			out[mi] = append(out[mi], j)
		}
	}
	return out
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{M: s.M, Assignment: append([]int(nil), s.Assignment...)}
	if s.Order != nil {
		out.Order = append([]int(nil), s.Order...)
	}
	return out
}

// Ratio returns the actual approximation ratio of the schedule against a
// reference optimal makespan, as a float64. It returns 0 if opt <= 0.
func (s *Schedule) Ratio(in *Instance, opt Time) float64 {
	if opt <= 0 {
		return 0
	}
	return float64(s.Makespan(in)) / float64(opt)
}
