package pcmax

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is one instance per stream:
//
//	# comment lines start with '#'
//	m <machines>
//	variant rs                  (optional: declared variant, letters r/s/w)
//	r <r1> <r2> ...             (optional: release times, one per job)
//	s <s1> <s2> ...             (optional: per-machine setup times)
//	w <machine> <start> <end> ...  (optional: availability windows)
//	<t1> <t2> ... (any number of whitespace-separated times, any line split)
//
// The section lines are recognized by their first field ("variant", "r",
// "s", "w"); every other non-comment field after the m header is a
// processing time, exactly as before the sections existed, so every plain
// stream parses byte-identically. Section lines repeat and append: a long
// release vector may be split over several "r" lines, and one "w <machine>"
// line per batch of start/end pairs adds windows to that machine. The
// layout mirrors the pyscheduling parallel-machine P/R/S file sections so
// external instance suites translate line for line.
//
// The JSON format is {"m": <machines>, "times": [...]} with the optional
// "release", "setup" and "windows" sections (omitted when empty).

// ErrBadFormat reports a malformed instance stream.
var ErrBadFormat = errors.New("pcmax: malformed instance")

// writeTimeRow writes values prefixed by keyword, wrapping at 16 per line.
func writeTimeRow(bw *bufio.Writer, keyword string, vals []Time) {
	for j, v := range vals {
		if j%16 == 0 {
			if j > 0 {
				bw.WriteByte('\n')
			}
			bw.WriteString(keyword)
		}
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(int64(v), 10))
	}
	bw.WriteByte('\n')
}

// WriteText writes the instance in the line-oriented text format. Plain
// instances render exactly as they did before the variant sections existed;
// non-plain instances gain a "variant" declaration and the r/s/w sections
// between the m header and the processing times.
func WriteText(w io.Writer, in *Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "m %d\n", in.M)
	if v := in.Variant(); v != Plain {
		fmt.Fprintf(bw, "variant %s\n", v.Letters())
	}
	if len(in.Release) > 0 {
		writeTimeRow(bw, "r", in.Release)
	}
	if len(in.Setup) > 0 {
		writeTimeRow(bw, "s", in.Setup)
	}
	for mi, ws := range in.Windows {
		if len(ws) == 0 {
			continue
		}
		fmt.Fprintf(bw, "w %d", mi)
		for _, win := range ws {
			fmt.Fprintf(bw, " %d %d", win.Start, win.End)
		}
		bw.WriteByte('\n')
	}
	for j, t := range in.Times {
		if j > 0 {
			if j%16 == 0 {
				bw.WriteByte('\n')
			} else {
				bw.WriteByte(' ')
			}
		}
		bw.WriteString(strconv.FormatInt(int64(t), 10))
	}
	bw.WriteByte('\n')
	return bw.Flush()
}

// parseTimeFields parses whitespace-separated int64 fields into Times.
func parseTimeFields(fields []string, what string) ([]Time, error) {
	out := make([]Time, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad %s %q: %v", ErrBadFormat, what, f, err)
		}
		out = append(out, Time(v))
	}
	return out, nil
}

// ReadText parses the text format written by WriteText, including the
// optional variant sections. Streams without section lines parse exactly as
// they did before the sections existed. A declared "variant" line must cover
// every feature the sections actually use (it may over-declare, so a
// zero-valued release section under "variant r" is accepted).
//
//lint:parseroot text instances arrive from untrusted files
func ReadText(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	in := &Instance{}
	seenM := false
	declared := Plain
	seenDecl := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		i := 0
		if !seenM {
			if len(fields) < 2 || fields[0] != "m" {
				return nil, fmt.Errorf("%w: expected 'm <machines>' header, got %q", ErrBadFormat, line)
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("%w: bad machine count %q: %v", ErrBadFormat, fields[1], err)
			}
			in.M = m
			seenM = true
			i = 2
		} else {
			switch fields[0] {
			case "variant":
				if len(fields) != 2 {
					return nil, fmt.Errorf("%w: variant line wants one value, got %q", ErrBadFormat, line)
				}
				v, err := ParseVariant(fields[1])
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
				}
				declared, seenDecl = v, true
				continue
			case "r":
				vals, err := parseTimeFields(fields[1:], "release time")
				if err != nil {
					return nil, err
				}
				in.Release = append(in.Release, vals...)
				continue
			case "s":
				vals, err := parseTimeFields(fields[1:], "setup time")
				if err != nil {
					return nil, err
				}
				in.Setup = append(in.Setup, vals...)
				continue
			case "w":
				if len(fields) < 4 || (len(fields)-2)%2 != 0 {
					return nil, fmt.Errorf("%w: window line wants 'w <machine> <start> <end> ...', got %q", ErrBadFormat, line)
				}
				mi, err := strconv.Atoi(fields[1])
				if err != nil || mi < 0 || mi >= in.M {
					return nil, fmt.Errorf("%w: bad window machine %q (m=%d)", ErrBadFormat, fields[1], in.M)
				}
				vals, err := parseTimeFields(fields[2:], "window bound")
				if err != nil {
					return nil, err
				}
				if in.Windows == nil {
					in.Windows = make([][]Window, in.M)
				}
				for k := 0; k+1 < len(vals); k += 2 {
					in.Windows[mi] = append(in.Windows[mi], Window{Start: vals[k], End: vals[k+1]})
				}
				continue
			}
		}
		for ; i < len(fields); i++ {
			t, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad time %q: %v", ErrBadFormat, fields[i], err)
			}
			in.Times = append(in.Times, Time(t))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenM {
		return nil, fmt.Errorf("%w: missing 'm' header", ErrBadFormat)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if seenDecl {
		if det := in.Variant(); det&^declared != 0 {
			return nil, fmt.Errorf("%w: sections use variant %v but header declares only %v", ErrBadFormat, det, declared)
		}
	}
	return in, nil
}

type jsonInstance struct {
	M       int        `json:"m"`
	Times   []int64    `json:"times"`
	Release []int64    `json:"release,omitempty"`
	Setup   []int64    `json:"setup,omitempty"`
	Windows [][]Window `json:"windows,omitempty"`
}

func toInt64s(ts []Time) []int64 {
	if ts == nil {
		return nil
	}
	out := make([]int64, len(ts))
	for j, t := range ts {
		out[j] = int64(t)
	}
	return out
}

func toTimes(vs []int64) []Time {
	if vs == nil {
		return nil
	}
	out := make([]Time, len(vs))
	for j, v := range vs {
		out[j] = Time(v)
	}
	return out
}

// MarshalJSON implements json.Marshaler. Plain instances marshal exactly as
// before the variant sections existed; the optional sections appear only
// when present.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonInstance{
		M:       in.M,
		Times:   toInt64s(in.Times),
		Release: toInt64s(in.Release),
		Setup:   toInt64s(in.Setup),
		Windows: in.Windows,
	})
}

// ReadJSON parses one JSON instance from r, mirroring ReadText for the JSON
// format written by MarshalJSON. The decoded instance is validated.
//
//lint:parseroot JSON instances arrive from untrusted files
func ReadJSON(r io.Reader) (*Instance, error) {
	in := &Instance{}
	if err := json.NewDecoder(r).Decode(in); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return in, nil
}

// UnmarshalJSON implements json.Unmarshaler. The decoded instance is
// validated.
//
//lint:parseroot JSON instances arrive from untrusted byte slices
func (in *Instance) UnmarshalJSON(data []byte) error {
	var ji jsonInstance
	if err := json.Unmarshal(data, &ji); err != nil {
		return err
	}
	in.M = ji.M
	in.Times = toTimes(ji.Times)
	if in.Times == nil {
		in.Times = []Time{}
	}
	in.Release = toTimes(ji.Release)
	in.Setup = toTimes(ji.Setup)
	in.Windows = ji.Windows
	return in.Validate()
}

// String renders a compact one-line summary, not the full instance. Plain
// instances render exactly as before; non-plain instances name their
// variant.
func (in *Instance) String() string {
	if v := in.Variant(); v != Plain {
		return fmt.Sprintf("pcmax.Instance{m=%d n=%d sum=%d max=%d variant=%s}",
			in.M, in.N(), in.TotalTime(), in.MaxTime(), v)
	}
	return fmt.Sprintf("pcmax.Instance{m=%d n=%d sum=%d max=%d}", in.M, in.N(), in.TotalTime(), in.MaxTime())
}

type jsonSchedule struct {
	M          int   `json:"m"`
	Assignment []int `json:"assignment"`
	Order      []int `json:"order,omitempty"`
}

// MarshalJSON implements json.Marshaler for schedules.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonSchedule{M: s.M, Assignment: s.Assignment, Order: s.Order})
}

// UnmarshalJSON implements json.Unmarshaler. Machine indices are checked
// against [0, m) or -1 (unassigned) and the optional order against being a
// permutation; full validation against an instance still requires Validate.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	if js.M < 1 {
		return fmt.Errorf("%w (m=%d)", ErrNoMachines, js.M)
	}
	for j, mi := range js.Assignment {
		if mi < -1 || mi >= js.M {
			return fmt.Errorf("%w (job %d -> machine %d of %d)", ErrBadAssignment, j, mi, js.M)
		}
	}
	if len(js.Order) > 0 {
		if len(js.Order) != len(js.Assignment) {
			return fmt.Errorf("%w (order has %d entries for %d jobs)", ErrBadOrder, len(js.Order), len(js.Assignment))
		}
		seen := make([]bool, len(js.Assignment))
		for _, j := range js.Order {
			if j < 0 || j >= len(seen) || seen[j] {
				return fmt.Errorf("%w (entry %d)", ErrBadOrder, j)
			}
			seen[j] = true
		}
	}
	s.M = js.M
	s.Assignment = js.Assignment
	s.Order = js.Order
	return nil
}

// Gantt renders an ASCII per-machine view of the schedule: one line per
// machine listing its jobs as j:t pairs and the machine load. On variant
// instances each machine additionally reports its completion time (or
// "infeasible") and lists its jobs in processing order. Intended for
// examples and debugging, not machine parsing.
func (s *Schedule) Gantt(in *Instance) string {
	var b strings.Builder
	loads := s.Loads(in)
	width := len(strconv.Itoa(s.M - 1))
	if in.Variant() != Plain {
		done, err := s.Completions(in)
		for mi, jobs := range s.sequences(in) {
			if err != nil {
				fmt.Fprintf(&b, "machine %*d | load %6d | done infeasible |", width, mi, loads[mi])
			} else {
				fmt.Fprintf(&b, "machine %*d | load %6d | done %6d |", width, mi, loads[mi], done[mi])
			}
			for _, j := range jobs {
				fmt.Fprintf(&b, " %d:%d", j, in.Times[j])
			}
			b.WriteByte('\n')
		}
		if err != nil {
			fmt.Fprintf(&b, "makespan infeasible (%v)\n", err)
		} else {
			fmt.Fprintf(&b, "makespan %d\n", s.Makespan(in))
		}
		return b.String()
	}
	perMachine := s.MachineJobs()
	for mi := 0; mi < s.M; mi++ {
		fmt.Fprintf(&b, "machine %*d | load %6d |", width, mi, loads[mi])
		for _, j := range perMachine[mi] {
			fmt.Fprintf(&b, " %d:%d", j, in.Times[j])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "makespan %d\n", s.Makespan(in))
	return b.String()
}
