package pcmax

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is one instance per stream:
//
//	# comment lines start with '#'
//	m <machines>
//	<t1> <t2> ... (any number of whitespace-separated times, any line split)
//
// The JSON format is {"m": <machines>, "times": [t1, t2, ...]}.

// ErrBadFormat reports a malformed instance stream.
var ErrBadFormat = errors.New("pcmax: malformed instance")

// WriteText writes the instance in the line-oriented text format.
func WriteText(w io.Writer, in *Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "m %d\n", in.M)
	for j, t := range in.Times {
		if j > 0 {
			if j%16 == 0 {
				bw.WriteByte('\n')
			} else {
				bw.WriteByte(' ')
			}
		}
		bw.WriteString(strconv.FormatInt(int64(t), 10))
	}
	bw.WriteByte('\n')
	return bw.Flush()
}

// ReadText parses the text format written by WriteText.
func ReadText(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	in := &Instance{}
	seenM := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		i := 0
		if !seenM {
			if len(fields) < 2 || fields[0] != "m" {
				return nil, fmt.Errorf("%w: expected 'm <machines>' header, got %q", ErrBadFormat, line)
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("%w: bad machine count %q: %v", ErrBadFormat, fields[1], err)
			}
			in.M = m
			seenM = true
			i = 2
		}
		for ; i < len(fields); i++ {
			t, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad time %q: %v", ErrBadFormat, fields[i], err)
			}
			in.Times = append(in.Times, Time(t))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenM {
		return nil, fmt.Errorf("%w: missing 'm' header", ErrBadFormat)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

type jsonInstance struct {
	M     int     `json:"m"`
	Times []int64 `json:"times"`
}

// MarshalJSON implements json.Marshaler.
func (in *Instance) MarshalJSON() ([]byte, error) {
	times := make([]int64, len(in.Times))
	for j, t := range in.Times {
		times[j] = int64(t)
	}
	return json.Marshal(jsonInstance{M: in.M, Times: times})
}

// UnmarshalJSON implements json.Unmarshaler. The decoded instance is
// validated.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var ji jsonInstance
	if err := json.Unmarshal(data, &ji); err != nil {
		return err
	}
	in.M = ji.M
	in.Times = make([]Time, len(ji.Times))
	for j, t := range ji.Times {
		in.Times[j] = Time(t)
	}
	return in.Validate()
}

// String renders a compact one-line summary, not the full instance.
func (in *Instance) String() string {
	return fmt.Sprintf("pcmax.Instance{m=%d n=%d sum=%d max=%d}", in.M, in.N(), in.TotalTime(), in.MaxTime())
}

type jsonSchedule struct {
	M          int   `json:"m"`
	Assignment []int `json:"assignment"`
}

// MarshalJSON implements json.Marshaler for schedules.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonSchedule{M: s.M, Assignment: s.Assignment})
}

// UnmarshalJSON implements json.Unmarshaler. Machine indices are checked
// against [0, m) or -1 (unassigned); full validation against an instance
// still requires Validate.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	if js.M < 1 {
		return fmt.Errorf("%w (m=%d)", ErrNoMachines, js.M)
	}
	for j, mi := range js.Assignment {
		if mi < -1 || mi >= js.M {
			return fmt.Errorf("%w (job %d -> machine %d of %d)", ErrBadAssignment, j, mi, js.M)
		}
	}
	s.M = js.M
	s.Assignment = js.Assignment
	return nil
}

// Gantt renders an ASCII per-machine view of the schedule: one line per
// machine listing its jobs as j:t pairs and the machine load. Intended for
// examples and debugging, not machine parsing.
func (s *Schedule) Gantt(in *Instance) string {
	var b strings.Builder
	loads := s.Loads(in)
	perMachine := s.MachineJobs()
	width := len(strconv.Itoa(s.M - 1))
	for mi := 0; mi < s.M; mi++ {
		fmt.Fprintf(&b, "machine %*d | load %6d |", width, mi, loads[mi])
		for _, j := range perMachine[mi] {
			fmt.Fprintf(&b, " %d:%d", j, in.Times[j])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "makespan %d\n", s.Makespan(in))
	return b.String()
}
