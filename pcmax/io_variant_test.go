package pcmax

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func variantInstance() *Instance {
	return &Instance{
		M:       2,
		Times:   []Time{5, 3, 7, 2},
		Release: []Time{0, 4, 0, 1},
		Setup:   []Time{1, 0},
		Windows: [][]Window{{{Start: 0, End: 40}}, {{Start: 2, End: 10}, {Start: 15, End: 60}}},
	}
}

func TestTextRoundTripVariant(t *testing.T) {
	in := variantInstance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"variant rsw", "r 0 4 0 1", "s 1 0", "w 0 0 40", "w 1 2 10 15 60"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertInstanceEqual(t, in, back)
}

func TestWriteTextPlainUnchangedByVariantSupport(t *testing.T) {
	// A plain instance must render with zero trace of the variant grammar.
	in := &Instance{M: 2, Times: []Time{5, 3, 7}}
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "m 2\n5 3 7\n"; got != want {
		t.Fatalf("plain output changed: %q, want %q", got, want)
	}
}

func TestReadTextSectionsAppend(t *testing.T) {
	// Long sections split over several lines append in order.
	text := "m 2\nvariant rs\nr 0 4\nr 0 1\ns 1\ns 0\n5 3\n7 2\n"
	in, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := &Instance{M: 2, Times: []Time{5, 3, 7, 2}, Release: []Time{0, 4, 0, 1}, Setup: []Time{1, 0}}
	assertInstanceEqual(t, want, in)
}

func TestReadTextUndeclaredSectionsAccepted(t *testing.T) {
	// The variant header is optional: sections alone classify the instance.
	in, err := ReadText(strings.NewReader("m 1\ns 2\n5 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if in.Variant() != SetupTimes {
		t.Fatalf("variant = %v, want setup", in.Variant())
	}
}

func TestReadTextOverDeclarationAccepted(t *testing.T) {
	// Declaring more than the sections use is allowed (an all-zero release
	// vector under "variant r" stays plain).
	in, err := ReadText(strings.NewReader("m 1\nvariant rs\nr 0 0\n5 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if in.Variant() != Plain {
		t.Fatalf("variant = %v, want plain", in.Variant())
	}
}

func TestReadTextUnderDeclarationRejected(t *testing.T) {
	// Declaring less than the sections use is a format error.
	_, err := ReadText(strings.NewReader("m 1\nvariant r\ns 2\n5 3\n"))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestReadTextBadSections(t *testing.T) {
	cases := []string{
		"m 2\nvariant\n5 3\n",                     // variant without value
		"m 2\nvariant q\n5 3\n",                   // unknown letter
		"m 2\nw 0\n5 3\n",                         // window line without bounds
		"m 2\nw 0 1\n5 3\n",                       // odd bound count
		"m 2\nw 5 0 10\n5 3\n",                    // machine out of range
		"m 2\nw x 0 10\n5 3\n",                    // non-numeric machine
		"m 2\nr 1 x\n5 3\n",                       // non-numeric release
		"m 2\nr 1\n5 3\n",                         // release count mismatch (1 for 2 jobs)
		"m 2\ns -1 0\n5 3\n",                      // negative setup
		"m 2\nw 0 10 5\n5 3\n",                    // inverted window
		"m 2\nw 0 0 10 5 8\n5 3\n",                // unsorted windows
		"m 1\nw 0 0 9223372036854775807 1 2\n5\n", // overlap via max end
	}
	for _, text := range cases {
		if _, err := ReadText(strings.NewReader(text)); err == nil {
			t.Errorf("accepted malformed stream %q", text)
		}
	}
}

func TestJSONRoundTripVariant(t *testing.T) {
	in := variantInstance()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"release"`, `"setup"`, `"windows"`, `"start"`, `"end"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing %s: %s", key, data)
		}
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	assertInstanceEqual(t, in, &back)
}

func TestJSONPlainOmitsVariantSections(t *testing.T) {
	in := &Instance{M: 2, Times: []Time{5, 3}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(data), `{"m":2,"times":[5,3]}`; got != want {
		t.Fatalf("plain JSON changed: %s, want %s", got, want)
	}
}

func TestScheduleJSONRoundTripOrder(t *testing.T) {
	s := &Schedule{M: 2, Assignment: []int{0, 1, 0}, Order: []int{2, 0, 1}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Order) != 3 || back.Order[0] != 2 {
		t.Fatalf("order lost: %+v", back)
	}
	// A non-permutation order is rejected at decode time.
	if err := json.Unmarshal([]byte(`{"m":2,"assignment":[0,1],"order":[0,0]}`), &back); err == nil {
		t.Fatal("accepted duplicate order entries")
	}
}

func assertInstanceEqual(t *testing.T, want, got *Instance) {
	t.Helper()
	if got.M != want.M || len(got.Times) != len(want.Times) {
		t.Fatalf("dims differ: got m=%d n=%d, want m=%d n=%d", got.M, got.N(), want.M, want.N())
	}
	for j := range want.Times {
		if got.Times[j] != want.Times[j] {
			t.Fatalf("times differ at %d: %d vs %d", j, got.Times[j], want.Times[j])
		}
	}
	if len(got.Release) != len(want.Release) || len(got.Setup) != len(want.Setup) {
		t.Fatalf("section lengths differ: %+v vs %+v", got, want)
	}
	for j := range want.Release {
		if got.Release[j] != want.Release[j] {
			t.Fatalf("release differs at %d", j)
		}
	}
	for i := range want.Setup {
		if got.Setup[i] != want.Setup[i] {
			t.Fatalf("setup differs at %d", i)
		}
	}
	if len(got.Windows) != len(want.Windows) {
		t.Fatalf("window machine counts differ")
	}
	for i := range want.Windows {
		if len(got.Windows[i]) != len(want.Windows[i]) {
			t.Fatalf("window counts differ on machine %d", i)
		}
		for k := range want.Windows[i] {
			if got.Windows[i][k] != want.Windows[i][k] {
				t.Fatalf("window %d/%d differs", i, k)
			}
		}
	}
}
