// Benchmarks regenerating the paper's evaluation, one benchmark family per
// table/figure, plus ablations of the design choices listed in DESIGN.md.
//
//	go test -bench=. -benchmem
//
// Wall-clock parallel speedup requires parallel hardware; on single-core
// hosts use cmd/schedbench, which additionally reports the simulated-
// multicore speedups (see EXPERIMENTS.md).
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/exact"
	"repro/internal/exper"
	"repro/internal/listsched"
	"repro/internal/multifit"
	"repro/internal/par"
	"repro/internal/sahni"
	"repro/internal/workload"
	"repro/pcmax"
)

// benchCores are the worker counts exercised by the per-figure benchmarks
// (the paper sweeps 2..16).
var benchCores = []int{1, 2, 4, 8, 16}

// benchExactNodeLimit bounds each exact solve inside benchmarks so that a
// CPLEX-style blow-up (the paper saw >100s solves) does not stall the whole
// bench run; schedbench runs the unbounded version.
const benchExactNodeLimit = 2_000_000

func speedupInstance(b *testing.B, fam workload.Family, m, n int) *pcmax.Instance {
	b.Helper()
	in, err := workload.Generate(workload.Spec{Family: fam, M: m, N: n, Seed: 2017})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// benchFigure runs the paper's speedup-figure workload (fig 2, 3 or 4):
// the parallel PTAS per family per core count, the sequential PTAS, and the
// IP baseline.
func benchFigure(b *testing.B, m, n int) {
	for _, fam := range workload.SpeedupFamilies {
		in := speedupInstance(b, fam, m, n)
		b.Run(fmt.Sprintf("seqPTAS/%v", fam), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3, Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, c := range benchCores[1:] {
			b.Run(fmt.Sprintf("parPTAS/%v/workers=%d", fam, c), func(b *testing.B) {
				pool := par.NewPool(c)
				defer pool.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3, Workers: c, Pool: pool}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("IP/%v", fam), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := exact.SolveAssignment(context.Background(), in, exact.Options{NodeLimit: benchExactNodeLimit}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2 reproduces Figure 2's workload: m=20, n=100.
func BenchmarkFig2(b *testing.B) { benchFigure(b, 20, 100) }

// BenchmarkFig3 reproduces Figure 3's workload: m=10, n=50.
func BenchmarkFig3(b *testing.B) { benchFigure(b, 10, 50) }

// BenchmarkFig4 reproduces Figure 4's workload: m=10, n=30.
func BenchmarkFig4(b *testing.B) { benchFigure(b, 10, 30) }

// BenchmarkFig5Ratios reproduces Figure 5's workload (Tables II and III):
// the three approximation algorithms on the best/worst-case instance sets,
// with the certified-optimal baseline.
func BenchmarkFig5Ratios(b *testing.B) {
	for _, ri := range append(exper.TableII(), exper.TableIII()...) {
		in, err := workload.Generate(workload.Spec{Family: ri.Fam, M: ri.M, N: ri.N, Seed: 2017})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ri.ID+"/parPTAS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3, Workers: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(ri.ID+"/LPT", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				listsched.LPT(in)
			}
		})
		b.Run(ri.ID+"/LS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				listsched.LS(in)
			}
		})
		b.Run(ri.ID+"/exact", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := exact.Solve(context.Background(), in, exact.Options{NodeLimit: benchExactNodeLimit}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ablationInstance is a mid-sized adversarial-family instance whose DP table
// (tens of thousands of entries) makes fill-strategy differences visible.
func ablationInstance(b *testing.B) *pcmax.Instance {
	return speedupInstance(b, workload.Um_2m1, 20, 41)
}

// BenchmarkAblationLevelMode compares the paper-faithful per-level full
// table scan with the bucketed level index.
func BenchmarkAblationLevelMode(b *testing.B) {
	in := ablationInstance(b)
	for _, mode := range []dp.LevelMode{dp.LevelBuckets, dp.LevelScan} {
		b.Run(mode.String(), func(b *testing.B) {
			pool := par.NewPool(4)
			defer pool.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(context.Background(), in, core.Options{
					Epsilon: 0.3, Workers: 4, Pool: pool, LevelMode: mode,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParFor compares the three level-scheduling strategies
// (OpenMP static,1 / static / dynamic equivalents).
func BenchmarkAblationParFor(b *testing.B) {
	in := ablationInstance(b)
	for _, strategy := range par.Strategies {
		b.Run(strategy.String(), func(b *testing.B) {
			pool := par.NewPool(4)
			defer pool.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(context.Background(), in, core.Options{
					Epsilon: 0.3, Workers: 4, Pool: pool, Strategy: strategy,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationShortRule compares the paper's LPT short-job placement
// against the original Hochbaum–Shmoys LS rule.
func BenchmarkAblationShortRule(b *testing.B) {
	in := speedupInstance(b, workload.U1_100, 20, 100)
	for rule, name := range map[core.ShortRule]string{core.ShortLPT: "LPT", core.ShortLS: "LS"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3, ShortRule: rule}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSeqFill compares the bottom-up sweep with the
// paper-faithful memoized recursion (Algorithm 2).
func BenchmarkAblationSeqFill(b *testing.B) {
	in := ablationInstance(b)
	for fill, name := range map[core.SeqFill]string{core.SeqBottomUp: "bottom-up", core.SeqRecursive: "recursive"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3, SeqFill: fill}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationConfigEnum compares the shared filtered configuration
// list against the paper-faithful per-entry re-enumeration (Algorithm 3
// Line 17).
func BenchmarkAblationConfigEnum(b *testing.B) {
	in := ablationInstance(b)
	for _, perEntry := range []bool{false, true} {
		name := "shared"
		if perEntry {
			name = "per-entry"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3, PerEntryConfigs: perEntry}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIncumbent measures the exact solver with and without the
// MultiFit incumbent.
func BenchmarkAblationIncumbent(b *testing.B) {
	in := speedupInstance(b, workload.U1_100, 10, 50)
	for _, disable := range []bool{false, true} {
		name := "lpt+multifit"
		if disable {
			name = "lpt-only"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := exact.Solve(context.Background(), in, exact.Options{
					NodeLimit: benchExactNodeLimit, DisableMultiFitIncumbent: disable,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDPFillScaling isolates the DP fill on progressively larger tables
// to expose the parallel fill's scaling independent of the bisection.
func BenchmarkDPFillScaling(b *testing.B) {
	shapes := []struct {
		name   string
		sizes  []pcmax.Time
		counts []int
		T      pcmax.Time
	}{
		{"paper-example", []pcmax.Time{6, 11}, []int{2, 3}, 30},
		{"small", []pcmax.Time{5, 7, 9}, []int{8, 8, 8}, 40},
		{"medium", []pcmax.Time{11, 13, 17, 19}, []int{10, 10, 10, 10}, 90},
		{"large", []pcmax.Time{11, 13, 17, 19, 23}, []int{12, 12, 12, 12, 12}, 110},
	}
	for _, shape := range shapes {
		for _, workers := range benchCores {
			b.Run(fmt.Sprintf("%s/workers=%d", shape.name, workers), func(b *testing.B) {
				pool := par.NewPool(workers)
				defer pool.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tbl, err := dp.New(shape.sizes, shape.counts, shape.T, 0, 0)
					if err != nil {
						b.Fatal(err)
					}
					if workers == 1 {
						tbl.FillSequential()
					} else {
						tbl.FillParallel(pool, dp.LevelBuckets, par.RoundRobin)
					}
				}
			})
		}
	}
}

// BenchmarkDPFillPruned compares the optimized fill path (Jobs-sorted pruned
// configuration scan, odometer decoding, config-outer sequential sweep)
// against the seed path (LegacyFill: division decode, full configuration
// scan) on the rounded tables the Fig. 2-4 workloads actually produce. The
// differential tests prove both paths fill bit-identical tables, so ns/op is
// the only difference. `cmd/schedbench dp -json` captures the same grid in
// BENCH_dp.json.
func BenchmarkDPFillPruned(b *testing.B) {
	shapes := []struct {
		name string
		m, n int
		fam  workload.Family
	}{
		{"fig2", 20, 100, workload.U1_100},
		{"fig3", 10, 50, workload.U1_100},
		{"fig4", 10, 30, workload.U1_10n},
	}
	for _, shape := range shapes {
		in := speedupInstance(b, shape.fam, shape.m, shape.n)
		_, st, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		sizes, counts, err := core.RoundedClasses(in, st.K, st.FinalT)
		if err != nil {
			b.Fatal(err)
		}
		if len(sizes) == 0 {
			continue
		}
		tbl, err := dp.New(sizes, counts, st.FinalT, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, legacy := range []bool{false, true} {
			path := "optimized"
			if legacy {
				path = "legacy"
			}
			b.Run(fmt.Sprintf("%s/%v/seq/%s", shape.name, shape.fam, path), func(b *testing.B) {
				tbl.LegacyFill = legacy
				for i := 0; i < b.N; i++ {
					tbl.FillSequential()
				}
			})
			b.Run(fmt.Sprintf("%s/%v/buckets-4/%s", shape.name, shape.fam, path), func(b *testing.B) {
				pool := par.NewPool(4)
				defer pool.Close()
				tbl.LegacyFill = legacy
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tbl.FillParallel(pool, dp.LevelBuckets, par.RoundRobin)
				}
			})
		}
	}
}

// BenchmarkBaselines measures the classical algorithms at the paper's
// largest scale.
func BenchmarkBaselines(b *testing.B) {
	in := speedupInstance(b, workload.U1_100, 20, 100)
	b.Run("LS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			listsched.LS(in)
		}
	})
	b.Run("LPT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			listsched.LPT(in)
		}
	})
	b.Run("MultiFit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := multifit.Solve(context.Background(), in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionSahni compares Sahni's fixed-m DP (exact) with the
// general branch-and-bound and the PTAS on a small-m instance.
func BenchmarkExtensionSahni(b *testing.B) {
	in := speedupInstance(b, workload.U1_10, 3, 30)
	b.Run("sahni-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sahni.Solve(context.Background(), in, sahni.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sahni-fptas-0.2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sahni.Solve(context.Background(), in, sahni.Options{Epsilon: 0.2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-bb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := exact.Solve(context.Background(), in, exact.Options{NodeLimit: benchExactNodeLimit}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ptas-0.2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionSpeculative compares the paper's bisection with the
// speculative multi-probe extension on a wide-interval instance.
func BenchmarkExtensionSpeculative(b *testing.B) {
	in := speedupInstance(b, workload.U1_10n, 10, 50)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, probes := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("probes=%d", probes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3, SpeculativeProbes: probes}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactTriplets stresses the exact solvers on the 3-partition-like
// triplet family, the known hard case for branch-and-bound.
func BenchmarkExactTriplets(b *testing.B) {
	for _, m := range []int{4, 6, 8} {
		in, err := workload.Triplets(m, 400, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("bin-completion/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := exact.Solve(context.Background(), in, exact.Options{NodeLimit: benchExactNodeLimit}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("assignment-IP/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := exact.SolveAssignment(context.Background(), in, exact.Options{NodeLimit: benchExactNodeLimit}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDataflow compares the paper's level-synchronous parallel
// fill against the barrier-free dataflow fill.
func BenchmarkAblationDataflow(b *testing.B) {
	in := ablationInstance(b)
	b.Run("level-sync", func(b *testing.B) {
		pool := par.NewPool(4)
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3, Workers: 4, Pool: pool}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dataflow", func(b *testing.B) {
		pool := par.NewPool(4)
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Solve(context.Background(), in, core.Options{Epsilon: 0.3, Workers: 4, Pool: pool, Dataflow: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMultiFitHeuristic compares the FFD and BFD inner packing
// rules under MultiFit's capacity search.
func BenchmarkAblationMultiFitHeuristic(b *testing.B) {
	in := speedupInstance(b, workload.U1_100, 20, 100)
	for _, h := range []multifit.Heuristic{multifit.FFD, multifit.BFD} {
		b.Run(h.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := multifit.SolveHeuristic(context.Background(), in, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
